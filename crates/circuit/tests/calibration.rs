//! Calibration of the device model against the paper's published
//! circuit-level numbers (Fig 1, Fig 2, §3.1/§3.2).
//!
//! Tolerances are deliberately loose (the device model is an analytical
//! surrogate for HSPICE decks we do not have); the point is to pin the
//! *shape*: magnitudes within ~±30 %, correct orderings, correct trends.

use ntv_circuit::chain::ChainMc;
use ntv_device::calib;
use ntv_device::{TechModel, TechNode};
use ntv_mc::StreamRng;
use ntv_units::Volts;

const SAMPLES: usize = 4000;

fn chain_3s(tech: &TechModel, len: usize, vdd: f64, seed: u64) -> f64 {
    let chain = ChainMc::new(tech, len);
    let mut rng = StreamRng::from_seed_and_label(seed, "calibration");
    chain.three_sigma_over_mu(Volts(vdd), SAMPLES, &mut rng)
}

#[test]
fn fig1a_single_inverter_90nm() {
    let tech = TechModel::new(TechNode::Gp90);
    println!("Fig 1(a) single inverter, 90nm GP (3sigma/mu %):");
    println!("{:>6} {:>8} {:>8} {:>7}", "Vdd", "paper", "model", "relerr");
    for &(vdd, want) in &calib::FIG1_SINGLE_INVERTER_90NM {
        let got = chain_3s(&tech, 1, vdd, 1);
        let rel = calib::relative_error(got, want);
        println!(
            "{vdd:>6.2} {:>8.2} {:>8.2} {rel:>7.2}",
            want * 100.0,
            got * 100.0
        );
        assert!(
            rel < 0.30,
            "single inverter at {vdd} V: {got} vs paper {want}"
        );
    }
}

#[test]
fn fig1b_chain50_90nm() {
    let tech = TechModel::new(TechNode::Gp90);
    println!("Fig 1(b) chain of 50 FO4, 90nm GP (3sigma/mu %):");
    println!("{:>6} {:>8} {:>8} {:>7}", "Vdd", "paper", "model", "relerr");
    for &(vdd, want) in &calib::FIG1_CHAIN50_90NM {
        let got = chain_3s(&tech, 50, vdd, 2);
        let rel = calib::relative_error(got, want);
        println!(
            "{vdd:>6.2} {:>8.2} {:>8.2} {rel:>7.2}",
            want * 100.0,
            got * 100.0
        );
        assert!(rel < 0.30, "chain-50 at {vdd} V: {got} vs paper {want}");
    }
}

#[test]
fn fig2_chain50_22nm_endpoints() {
    let tech = TechModel::new(TechNode::PtmHp22);
    for &(vdd, want) in &calib::FIG2_CHAIN50_22NM {
        let got = chain_3s(&tech, 50, vdd, 3);
        let rel = calib::relative_error(got, want);
        println!("22nm chain-50 @{vdd} V: paper {want:.3}, model {got:.3}");
        assert!(
            rel < 0.30,
            "22nm chain-50 at {vdd} V: {got} vs paper {want}"
        );
    }
}

#[test]
fn fig2_node_ordering_at_low_voltage() {
    // At 0.5 V the four curves of Fig 2 are ordered 90nm lowest, 22nm
    // highest, with 45nm GP above 32nm PTM (commercial pessimism).
    let v = 0.5;
    let s90 = chain_3s(&TechModel::new(TechNode::Gp90), 50, v, 4);
    let s45 = chain_3s(&TechModel::new(TechNode::Gp45), 50, v, 4);
    let s32 = chain_3s(&TechModel::new(TechNode::PtmHp32), 50, v, 4);
    let s22 = chain_3s(&TechModel::new(TechNode::PtmHp22), 50, v, 4);
    println!("chain-50 @0.5 V: 90nm {s90:.3} 45nm {s45:.3} 32nm {s32:.3} 22nm {s22:.3}");
    assert!(
        s90 < s32 && s32 < s45 && s45 < s22,
        "{s90} {s32} {s45} {s22}"
    );
}

#[test]
fn scaling_ratio_22_vs_90_at_055v() {
    let r = chain_3s(&TechModel::new(TechNode::PtmHp22), 50, 0.55, 5)
        / chain_3s(&TechModel::new(TechNode::Gp90), 50, 0.55, 5);
    println!("22nm / 90nm chain-50 ratio @0.55 V: {r:.2} (paper: 2.5)");
    assert!(
        (r / calib::CHAIN50_22NM_OVER_90NM_AT_055V - 1.0).abs() < 0.35,
        "ratio {r}"
    );
}

#[test]
fn absolute_chain_delays_90nm() {
    let tech = TechModel::new(TechNode::Gp90);
    let chain = ChainMc::new(&tech, 50);
    let d05 = chain.nominal_delay_ps(Volts(0.5)) / 1000.0;
    let d06 = chain.nominal_delay_ps(Volts(0.6)) / 1000.0;
    println!("chain-50 delay: {d05:.2} ns @0.5 V (paper 22.05), {d06:.2} ns @0.6 V (paper 8.99)");
    assert!(calib::relative_error(d05, calib::CHAIN50_DELAY_NS_90NM_05V) < 0.15);
    assert!(calib::relative_error(d06, calib::CHAIN50_DELAY_NS_90NM_06V) < 0.15);
}
