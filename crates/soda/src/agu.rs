//! Address-generation-unit pipelines.
//!
//! Diet SODA dedicates one AGU pipeline to each SIMD memory bank plus the
//! prefetcher (Appendix B): the AGUs turn an access *pattern* (linear
//! stride, 2-D block) into the four per-bank row addresses of each vector
//! access, off the critical SIMD path. Here an [`AccessPattern`] is an
//! iterator-style generator of `[usize; 4]` row tuples.

use serde::{Deserialize, Serialize};

use crate::{BANKS, BANK_ROWS};

/// A vector-access address pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// `count` accesses at rows `base`, `base + stride`, … (all four banks
    /// share the row index — the layout produced by
    /// [`crate::memory::SimdMemory::stage`]).
    Linear {
        /// First row.
        base: usize,
        /// Row increment between consecutive accesses.
        stride: usize,
        /// Number of accesses.
        count: usize,
    },
    /// A 2-D block walk: `rows × cols` tile whose row `r`, column step `c`
    /// accesses row `base + r·row_stride + c` (used by 2-D convolution and
    /// other image kernels).
    Block {
        /// First row.
        base: usize,
        /// Rows in the tile.
        rows: usize,
        /// Vector-columns in the tile.
        cols: usize,
        /// Row-address distance between tile rows.
        row_stride: usize,
    },
}

impl AccessPattern {
    /// Number of vector accesses the pattern generates.
    #[must_use]
    pub fn len(&self) -> usize {
        match *self {
            AccessPattern::Linear { count, .. } => count,
            AccessPattern::Block { rows, cols, .. } => rows * cols,
        }
    }

    /// Whether the pattern generates no accesses.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th access's per-bank rows.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn rows(&self, i: usize) -> [usize; BANKS] {
        assert!(i < self.len(), "access index {i} out of range");
        let row = match *self {
            AccessPattern::Linear { base, stride, .. } => base + i * stride,
            AccessPattern::Block {
                base,
                cols,
                row_stride,
                ..
            } => {
                let (r, c) = (i / cols, i % cols);
                base + r * row_stride + c
            }
        };
        [row; BANKS]
    }

    /// Validate that every generated address fits the bank depth.
    ///
    /// # Errors
    ///
    /// Returns the first out-of-range row.
    pub fn validate(&self) -> Result<(), PatternOutOfRange> {
        for i in 0..self.len() {
            let rows = self.rows(i);
            for &r in &rows {
                if r >= BANK_ROWS {
                    return Err(PatternOutOfRange { access: i, row: r });
                }
            }
        }
        Ok(())
    }

    /// Iterate all per-bank row tuples.
    pub fn iter(&self) -> impl Iterator<Item = [usize; BANKS]> + '_ {
        (0..self.len()).map(|i| self.rows(i))
    }
}

/// Error: a pattern generates a row beyond the bank depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternOutOfRange {
    /// Which access overflowed.
    pub access: usize,
    /// The offending row.
    pub row: usize,
}

impl std::fmt::Display for PatternOutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "access {} generates row {} beyond the bank depth {}",
            self.access, self.row, BANK_ROWS
        )
    }
}

impl std::error::Error for PatternOutOfRange {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_pattern_strides() {
        let p = AccessPattern::Linear {
            base: 4,
            stride: 2,
            count: 3,
        };
        assert_eq!(p.len(), 3);
        assert_eq!(p.rows(0), [4; 4]);
        assert_eq!(p.rows(2), [8; 4]);
        p.validate().unwrap();
    }

    #[test]
    fn block_pattern_walks_2d() {
        let p = AccessPattern::Block {
            base: 10,
            rows: 2,
            cols: 3,
            row_stride: 8,
        };
        assert_eq!(p.len(), 6);
        assert_eq!(p.rows(0), [10; 4]);
        assert_eq!(p.rows(2), [12; 4]);
        assert_eq!(p.rows(3), [18; 4]); // second tile row
        assert_eq!(p.rows(5), [20; 4]);
    }

    #[test]
    fn validation_catches_overflow() {
        let p = AccessPattern::Linear {
            base: 250,
            stride: 4,
            count: 3,
        };
        let err = p.validate().unwrap_err();
        assert_eq!(err.access, 2);
        assert_eq!(err.row, 258);
        assert!(err.to_string().contains("row 258"));
    }

    #[test]
    fn iter_matches_rows() {
        let p = AccessPattern::Linear {
            base: 0,
            stride: 1,
            count: 5,
        };
        let collected: Vec<_> = p.iter().collect();
        assert_eq!(collected.len(), 5);
        assert_eq!(collected[4], p.rows(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rows_bounds_checked() {
        let p = AccessPattern::Linear {
            base: 0,
            stride: 1,
            count: 2,
        };
        let _ = p.rows(2);
    }
}
