//! The Diet SODA instruction set.
//!
//! The PE is driven by a flat list of instructions, the way a VLIW kernel
//! compiler would emit them; sequential control (loop counts, addresses)
//! is resolved at program-build time by the kernel generators in
//! [`crate::kernels`], standing in for the scalar pipeline's bookkeeping.
//!
//! Vector arithmetic runs on the 128 near-threshold functional units and
//! is therefore subject to timing-fault injection; loads, stores and
//! shuffles run in the full-voltage domain (memory system + XRAM).

use serde::{Deserialize, Serialize};

use crate::{BANKS, SCALAR_REGS, SIMD_REGS};

/// A SIMD register-file index (0..32).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VReg(u8);

impl VReg {
    /// Checked constructor.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < SIMD_REGS,
            "vector register v{index} does not exist"
        );
        Self(index)
    }

    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A scalar register index (0..16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SReg(u8);

impl SReg {
    /// Checked constructor.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < SCALAR_REGS,
            "scalar register s{index} does not exist"
        );
        Self(index)
    }

    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Two-operand vector ALU/multiplier operations (element-wise, 16-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VBinOp {
    /// Saturating add.
    Add,
    /// Saturating subtract.
    Sub,
    /// Wrapping low 16-bit product (exact for ±1 sign vectors).
    Mul,
    /// Q15 fractional multiply: `(a·b) >> 15`, saturated.
    MulQ15,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// `1` where `a > b`, else `0` (predicate generation).
    CmpGt,
}

impl VBinOp {
    /// Apply the operation to one element pair.
    #[must_use]
    pub fn apply(self, a: i16, b: i16) -> i16 {
        match self {
            VBinOp::Add => a.saturating_add(b),
            VBinOp::Sub => a.saturating_sub(b),
            VBinOp::Mul => a.wrapping_mul(b),
            VBinOp::MulQ15 => {
                let p = (i32::from(a) * i32::from(b)) >> 15;
                p.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16
            }
            VBinOp::Min => a.min(b),
            VBinOp::Max => a.max(b),
            VBinOp::And => a & b,
            VBinOp::Or => a | b,
            VBinOp::Xor => a ^ b,
            VBinOp::CmpGt => i16::from(a > b),
        }
    }
}

/// One-operand vector operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VUnOp {
    /// Saturating absolute value.
    Abs,
    /// Saturating negation.
    Neg,
    /// Bitwise NOT.
    Not,
    /// Logical shift left by an immediate.
    ShlImm(u8),
    /// Arithmetic shift right by an immediate.
    SarImm(u8),
}

impl VUnOp {
    /// Apply the operation to one element.
    #[must_use]
    pub fn apply(self, a: i16) -> i16 {
        match self {
            VUnOp::Abs => a.saturating_abs(),
            VUnOp::Neg => a.saturating_neg(),
            VUnOp::Not => !a,
            VUnOp::ShlImm(n) => a.wrapping_shl(u32::from(n)),
            VUnOp::SarImm(n) => a.wrapping_shr(u32::from(n).min(15)),
        }
    }
}

/// One Diet SODA instruction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instr {
    /// Load a 128-wide vector: bank `b` reads its row `rows[b]`.
    VLoad {
        /// Destination register.
        vd: VReg,
        /// Per-bank row addresses (AGU output).
        rows: [usize; BANKS],
    },
    /// Unaligned 128-wide load through the prefetch buffer: elements
    /// `offset..offset+128` of the two consecutive staged rows starting at
    /// `first_row` (paper Appendix B: prefetcher + 128-wide buffer + XRAM
    /// support complex alignment).
    VLoadUnaligned {
        /// Destination register.
        vd: VReg,
        /// First staged row.
        first_row: usize,
        /// Element offset into the 256-element window (0..128).
        offset: usize,
    },
    /// Store a 128-wide vector.
    VStore {
        /// Source register.
        vs: VReg,
        /// Per-bank row addresses.
        rows: [usize; BANKS],
    },
    /// `vd = va ⊕ vb` element-wise on the SIMD FUs.
    VBin {
        /// Operation.
        op: VBinOp,
        /// Destination.
        vd: VReg,
        /// First operand.
        va: VReg,
        /// Second operand.
        vb: VReg,
    },
    /// `vd = op(va)` element-wise.
    VUn {
        /// Operation.
        op: VUnOp,
        /// Destination.
        vd: VReg,
        /// Operand.
        va: VReg,
    },
    /// Clear the 32-bit MAC accumulators.
    VMacClear,
    /// `acc += va · vb` per lane (full-precision 32-bit accumulate).
    VMac {
        /// First operand.
        va: VReg,
        /// Second operand.
        vb: VReg,
    },
    /// `vd = saturate16(acc >> shift)` per lane.
    VMacRead {
        /// Destination.
        vd: VReg,
        /// Right shift applied before saturation.
        shift: u8,
    },
    /// Predicated select on the SIMD FUs:
    /// `vd[l] = if mask[l] != 0 { va[l] } else { vb[l] }`.
    ///
    /// Masks are produced by `CmpGt` (or loaded); this is the conditional
    /// primitive DLP kernels use instead of branches.
    VSel {
        /// Destination.
        vd: VReg,
        /// Predicate register (non-zero selects `va`).
        mask: VReg,
        /// Taken value.
        va: VReg,
        /// Not-taken value.
        vb: VReg,
    },
    /// Route `va` through stored crossbar configuration `slot`.
    Shuffle {
        /// Destination.
        vd: VReg,
        /// Source.
        va: VReg,
        /// Stored configuration slot.
        slot: usize,
    },
    /// Adder-tree reduction: `sd = saturate16(Σ va >> shift)`.
    Reduce {
        /// Destination scalar register.
        sd: SReg,
        /// Vector operand.
        va: VReg,
        /// Right shift applied to the 32-bit sum before saturation.
        shift: u8,
    },
    /// Broadcast an immediate into every lane of `vd`.
    BroadcastImm {
        /// Destination.
        vd: VReg,
        /// Value.
        value: i16,
    },
    /// Broadcast scalar register `ss` into every lane of `vd`
    /// (scalar-to-SIMD interface).
    BroadcastS {
        /// Destination.
        vd: VReg,
        /// Source scalar register.
        ss: SReg,
    },
    /// Load an immediate into a scalar register.
    SLoadImm {
        /// Destination.
        sd: SReg,
        /// Value.
        value: i16,
    },
    /// Scalar add: `sd = sa + sb` (saturating).
    SAdd {
        /// Destination.
        sd: SReg,
        /// First operand.
        sa: SReg,
        /// Second operand.
        sb: SReg,
    },
    /// Scalar multiply: `sd = sa · sb` (wrapping).
    SMul {
        /// Destination.
        sd: SReg,
        /// First operand.
        sa: SReg,
        /// Second operand.
        sb: SReg,
    },
    /// Scalar memory load.
    SLoad {
        /// Destination.
        sd: SReg,
        /// Word address.
        addr: usize,
    },
    /// Scalar memory store.
    SStore {
        /// Source.
        ss: SReg,
        /// Word address.
        addr: usize,
    },
}

impl std::fmt::Display for VReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl std::fmt::Display for SReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl std::fmt::Display for Instr {
    /// Assembly-style disassembly, e.g. `vadd v2, v0, v1`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Instr::VLoad { vd, rows } => write!(f, "vload {vd}, rows{rows:?}"),
            Instr::VLoadUnaligned {
                vd,
                first_row,
                offset,
            } => {
                write!(f, "vloadu {vd}, row {first_row} + {offset}")
            }
            Instr::VStore { vs, rows } => write!(f, "vstore {vs}, rows{rows:?}"),
            Instr::VBin { op, vd, va, vb } => {
                let name = match op {
                    VBinOp::Add => "vadd",
                    VBinOp::Sub => "vsub",
                    VBinOp::Mul => "vmul",
                    VBinOp::MulQ15 => "vmulq15",
                    VBinOp::Min => "vmin",
                    VBinOp::Max => "vmax",
                    VBinOp::And => "vand",
                    VBinOp::Or => "vor",
                    VBinOp::Xor => "vxor",
                    VBinOp::CmpGt => "vcmpgt",
                };
                write!(f, "{name} {vd}, {va}, {vb}")
            }
            Instr::VUn { op, vd, va } => match op {
                VUnOp::Abs => write!(f, "vabs {vd}, {va}"),
                VUnOp::Neg => write!(f, "vneg {vd}, {va}"),
                VUnOp::Not => write!(f, "vnot {vd}, {va}"),
                VUnOp::ShlImm(n) => write!(f, "vshl {vd}, {va}, #{n}"),
                VUnOp::SarImm(n) => write!(f, "vsar {vd}, {va}, #{n}"),
            },
            Instr::VSel { vd, mask, va, vb } => write!(f, "vsel {vd}, {mask} ? {va} : {vb}"),
            Instr::VMacClear => f.write_str("vmac.clear"),
            Instr::VMac { va, vb } => write!(f, "vmac {va}, {vb}"),
            Instr::VMacRead { vd, shift } => write!(f, "vmac.read {vd}, #{shift}"),
            Instr::Shuffle { vd, va, slot } => write!(f, "vshuf {vd}, {va}, cfg{slot}"),
            Instr::Reduce { sd, va, shift } => write!(f, "vredsum {sd}, {va}, #{shift}"),
            Instr::BroadcastImm { vd, value } => write!(f, "vbcast {vd}, #{value}"),
            Instr::BroadcastS { vd, ss } => write!(f, "vbcast {vd}, {ss}"),
            Instr::SLoadImm { sd, value } => write!(f, "sli {sd}, #{value}"),
            Instr::SAdd { sd, sa, sb } => write!(f, "sadd {sd}, {sa}, {sb}"),
            Instr::SMul { sd, sa, sb } => write!(f, "smul {sd}, {sa}, {sb}"),
            Instr::SLoad { sd, addr } => write!(f, "sload {sd}, [{addr}]"),
            Instr::SStore { ss, addr } => write!(f, "sstore {ss}, [{addr}]"),
        }
    }
}

/// Render a program as an assembly listing with line numbers.
#[must_use]
pub fn disassemble(program: &[Instr]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (pc, instr) in program.iter().enumerate() {
        let _ = writeln!(out, "{pc:>5}:  {instr}");
    }
    out
}

impl Instr {
    /// Whether the instruction executes on the near-threshold SIMD
    /// functional units (and is therefore exposed to variation-induced
    /// timing faults).
    #[must_use]
    pub fn uses_simd_fus(&self) -> bool {
        matches!(
            self,
            Instr::VBin { .. }
                | Instr::VUn { .. }
                | Instr::VSel { .. }
                | Instr::VMac { .. }
                | Instr::VMacRead { .. }
        )
    }

    /// Issue cycles for the instruction (pipelined single-issue model;
    /// unaligned loads pay one extra memory cycle for the second row).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        match self {
            Instr::VLoadUnaligned { .. } => 2,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_semantics() {
        assert_eq!(VBinOp::Add.apply(i16::MAX, 1), i16::MAX); // saturates
        assert_eq!(VBinOp::Sub.apply(i16::MIN, 1), i16::MIN);
        assert_eq!(VBinOp::Mul.apply(-3, 2), -6);
        assert_eq!(VBinOp::MulQ15.apply(16384, 16384), 8192); // 0.5*0.5=0.25
        assert_eq!(VBinOp::Min.apply(3, -4), -4);
        assert_eq!(VBinOp::Max.apply(3, -4), 3);
        assert_eq!(VBinOp::CmpGt.apply(5, 4), 1);
        assert_eq!(VBinOp::CmpGt.apply(4, 5), 0);
        assert_eq!(VBinOp::Xor.apply(0b1100, 0b1010), 0b0110);
    }

    #[test]
    fn q15_multiply_saturates_minus_one_squared() {
        // (-1.0) * (-1.0) overflows Q15; must saturate to +MAX.
        assert_eq!(VBinOp::MulQ15.apply(i16::MIN, i16::MIN), i16::MAX);
    }

    #[test]
    fn unop_semantics() {
        assert_eq!(VUnOp::Abs.apply(-7), 7);
        assert_eq!(VUnOp::Abs.apply(i16::MIN), i16::MAX); // saturating
        assert_eq!(VUnOp::Neg.apply(5), -5);
        assert_eq!(VUnOp::Not.apply(0), -1);
        assert_eq!(VUnOp::ShlImm(2).apply(3), 12);
        assert_eq!(VUnOp::SarImm(1).apply(-4), -2);
    }

    #[test]
    fn register_validation() {
        assert_eq!(VReg::new(31).index(), 31);
        assert_eq!(SReg::new(15).index(), 15);
    }

    #[test]
    #[should_panic(expected = "v32 does not exist")]
    fn bad_vreg_rejected() {
        let _ = VReg::new(32);
    }

    #[test]
    fn fu_classification() {
        let v = VReg::new(0);
        assert!(Instr::VBin {
            op: VBinOp::Add,
            vd: v,
            va: v,
            vb: v
        }
        .uses_simd_fus());
        assert!(Instr::VMac { va: v, vb: v }.uses_simd_fus());
        assert!(!Instr::VLoad {
            vd: v,
            rows: [0; 4]
        }
        .uses_simd_fus());
        assert!(!Instr::Shuffle {
            vd: v,
            va: v,
            slot: 0
        }
        .uses_simd_fus());
    }

    #[test]
    fn disassembly_round_trips_mnemonics() {
        let v0 = VReg::new(0);
        let v1 = VReg::new(1);
        let s0 = SReg::new(0);
        let program = [
            Instr::VLoad {
                vd: v0,
                rows: [3; 4],
            },
            Instr::VBin {
                op: VBinOp::Add,
                vd: v1,
                va: v0,
                vb: v0,
            },
            Instr::VUn {
                op: VUnOp::SarImm(2),
                vd: v1,
                va: v1,
            },
            Instr::VMacClear,
            Instr::Reduce {
                sd: s0,
                va: v1,
                shift: 1,
            },
            Instr::Shuffle {
                vd: v0,
                va: v1,
                slot: 7,
            },
        ];
        let listing = disassemble(&program);
        for needle in [
            "vload v0",
            "vadd v1, v0, v0",
            "vsar v1, v1, #2",
            "vmac.clear",
            "vredsum s0, v1, #1",
            "vshuf v0, v1, cfg7",
        ] {
            assert!(
                listing.contains(needle),
                "missing `{needle}` in:\n{listing}"
            );
        }
        assert_eq!(listing.lines().count(), program.len());
        assert!(listing.starts_with("    0:"));
    }

    #[test]
    fn vsel_classification_and_disassembly() {
        let v0 = VReg::new(0);
        let instr = Instr::VSel {
            vd: v0,
            mask: VReg::new(1),
            va: VReg::new(2),
            vb: VReg::new(3),
        };
        assert!(instr.uses_simd_fus());
        assert_eq!(instr.to_string(), "vsel v0, v1 ? v2 : v3");
    }

    #[test]
    fn cycle_model() {
        let v = VReg::new(0);
        assert_eq!(
            Instr::VLoad {
                vd: v,
                rows: [0; 4]
            }
            .cycles(),
            1
        );
        assert_eq!(
            Instr::VLoadUnaligned {
                vd: v,
                first_row: 0,
                offset: 3
            }
            .cycles(),
            2
        );
    }
}
