//! Variation-induced timing-fault injection.
//!
//! A lane whose critical path is slower than the clock period latches a
//! stale or metastable value. [`FaultModel`] assigns each *physical* lane a
//! per-operation error probability derived from the architecture-level
//! delay model: lanes whose sampled delay exceeds the clock period fail
//! every cycle (hard faults); lanes inside a small guard band below it
//! fail intermittently.
//!
//! Three handling policies (paper §4):
//!
//! * [`ErrorPolicy::Corrupt`] — no protection; erroneous lanes silently
//!   produce wrong data (the baseline that motivates mitigation),
//! * [`ErrorPolicy::StallRetry`] — errors are detected and the whole SIMD
//!   array stalls and re-executes; correct results, but *"an error
//!   encountered in one SIMD lane causes the other lanes to stall, flush
//!   and execute the same operations again"* — the penalty the paper
//!   argues makes scalar-style recovery unattractive for wide SIMD,
//! * [`ErrorPolicy::SpareRemap`] — faulty lanes are identified at test
//!   time and bypassed through the XRAM crossbar (structural duplication);
//!   residual intermittent errors on healthy lanes remain.

use ntv_core::DatapathEngine;
use ntv_mc::StreamRng;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

/// How the PE responds to variation-induced timing errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ErrorPolicy {
    /// Errors propagate into results.
    Corrupt,
    /// Detect-and-replay across the whole SIMD array.
    StallRetry,
    /// Test-time spare remapping through the crossbar.
    #[default]
    SpareRemap,
}

impl std::fmt::Display for ErrorPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorPolicy::Corrupt => "corrupt",
            ErrorPolicy::StallRetry => "stall-retry",
            ErrorPolicy::SpareRemap => "spare-remap",
        };
        f.write_str(s)
    }
}

/// Per-physical-lane timing-error probabilities for one fabricated chip at
/// one operating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    error_prob: Vec<f64>,
}

impl FaultModel {
    /// A fault-free model over `lanes` physical lanes.
    #[must_use]
    pub fn none(lanes: usize) -> Self {
        Self {
            error_prob: vec![0.0; lanes],
        }
    }

    /// Model from explicit per-lane error probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1]`.
    #[must_use]
    pub fn from_probabilities(error_prob: Vec<f64>) -> Self {
        assert!(
            error_prob.iter().all(|p| (0.0..=1.0).contains(p)),
            "error probabilities must lie in [0, 1]"
        );
        Self { error_prob }
    }

    /// Model from sampled lane delays (FO4 units) against a clock period.
    ///
    /// Lanes slower than `t_clk_fo4` fail deterministically; lanes within
    /// `guard_band` (fractional, e.g. 0.02 = 2 %) below it fail with a
    /// probability ramping linearly from 0 to 1 across the band.
    ///
    /// # Panics
    ///
    /// Panics if `t_clk_fo4 <= 0` or `guard_band < 0`.
    #[must_use]
    pub fn from_lane_delays(delays_fo4: &[f64], t_clk_fo4: f64, guard_band: f64) -> Self {
        assert!(t_clk_fo4 > 0.0, "clock period must be positive");
        assert!(guard_band >= 0.0, "guard band cannot be negative");
        let band_start = t_clk_fo4 * (1.0 - guard_band);
        let probs = delays_fo4
            .iter()
            .map(|&d| {
                if d > t_clk_fo4 {
                    1.0
                } else if guard_band > 0.0 && d > band_start {
                    (d - band_start) / (t_clk_fo4 - band_start)
                } else {
                    0.0
                }
            })
            .collect();
        Self { error_prob: probs }
    }

    /// Sample one fabricated chip from the architecture-level variation
    /// model: `lanes + spares` physical lanes at `vdd`, clocked at
    /// `t_clk_ns`.
    #[must_use]
    pub fn from_engine(
        engine: &DatapathEngine<'_>,
        vdd: Volts,
        t_clk_ns: f64,
        spares: usize,
        guard_band: f64,
        rng: &mut StreamRng,
    ) -> Self {
        let physical = engine.config().lanes + spares;
        let delays = engine.sample_lane_delays_fo4(vdd, physical, rng);
        let t_clk_fo4 = t_clk_ns * 1000.0 / engine.fo4_unit_ps(vdd);
        Self::from_lane_delays(&delays, t_clk_fo4, guard_band)
    }

    /// Number of physical lanes.
    #[must_use]
    pub fn physical_lanes(&self) -> usize {
        self.error_prob.len()
    }

    /// Per-operation error probability of physical lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    #[must_use]
    pub fn error_probability(&self, lane: usize) -> f64 {
        // ntv:allow(panic-path): documented panic (see `# Panics`); lanes are machine-fixed at 128
        self.error_prob[lane]
    }

    /// Physical lanes whose error probability exceeds `threshold` — the
    /// set a test-time screen would mark faulty.
    #[must_use]
    pub fn faulty_lanes(&self, threshold: f64) -> Vec<usize> {
        self.error_prob
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > threshold)
            .map(|(l, _)| l)
            .collect()
    }

    /// Draw the set of physical lanes that err on one operation.
    pub fn sample_errors(&self, rng: &mut StreamRng) -> Vec<usize> {
        self.error_prob
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0 && (p >= 1.0 || rng.uniform() < p))
            .map(|(l, _)| l)
            .collect()
    }

    /// Whether any lane can ever err.
    #[must_use]
    pub fn is_fault_free(&self) -> bool {
        self.error_prob.iter().all(|&p| p == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntv_core::DatapathConfig;
    use ntv_device::{TechModel, TechNode};

    #[test]
    fn delays_map_to_probabilities() {
        let fm = FaultModel::from_lane_delays(&[50.0, 54.9, 55.5, 60.0], 55.0, 0.02);
        assert_eq!(fm.error_probability(0), 0.0);
        assert!(fm.error_probability(1) > 0.8 && fm.error_probability(1) < 1.0);
        assert_eq!(fm.error_probability(2), 1.0);
        assert_eq!(fm.error_probability(3), 1.0);
        assert_eq!(fm.faulty_lanes(0.5), vec![1, 2, 3]);
    }

    #[test]
    fn zero_guard_band_is_a_step() {
        let fm = FaultModel::from_lane_delays(&[54.999, 55.001], 55.0, 0.0);
        assert_eq!(fm.error_probability(0), 0.0);
        assert_eq!(fm.error_probability(1), 1.0);
    }

    #[test]
    fn sample_errors_respects_probabilities() {
        let fm = FaultModel::from_probabilities(vec![0.0, 1.0, 0.5]);
        let mut rng = StreamRng::from_seed(5);
        let mut hits = [0u32; 3];
        for _ in 0..2000 {
            for l in fm.sample_errors(&mut rng) {
                hits[l] += 1;
            }
        }
        assert_eq!(hits[0], 0);
        assert_eq!(hits[1], 2000);
        assert!((900..1100).contains(&hits[2]), "{}", hits[2]);
    }

    #[test]
    fn fault_free_detection() {
        assert!(FaultModel::none(8).is_fault_free());
        assert!(!FaultModel::from_probabilities(vec![0.0, 0.1]).is_fault_free());
    }

    #[test]
    fn from_engine_produces_faults_at_tight_clocks() {
        let tech = TechModel::new(TechNode::Gp90);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        let mut rng = StreamRng::from_seed(3);
        // A clock barely above the ideal 50-FO4 path at 0.5 V: many lanes miss it.
        let tight_ns = 51.0 * engine.fo4_unit_ps(Volts(0.5)) / 1000.0;
        let fm = FaultModel::from_engine(&engine, Volts(0.5), tight_ns, 6, 0.0, &mut rng);
        assert_eq!(fm.physical_lanes(), 134);
        assert!(!fm.faulty_lanes(0.5).is_empty());
        // A generous clock: fault-free.
        let loose_ns = 80.0 * engine.fo4_unit_ps(Volts(0.5)) / 1000.0;
        let fm = FaultModel::from_engine(&engine, Volts(0.5), loose_ns, 6, 0.0, &mut rng);
        assert!(fm.is_fault_free());
    }

    #[test]
    #[should_panic(expected = "must lie in [0, 1]")]
    fn invalid_probability_rejected() {
        let _ = FaultModel::from_probabilities(vec![1.5]);
    }
}
