#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Tests assert exact golden values; strict float equality is the point there.
#![cfg_attr(test, allow(clippy::float_cmp))]

//! Functional simulator of the **Diet SODA** processing element — the
//! near-threshold wide-SIMD architecture the paper's variation study
//! targets (Appendix B, Fig 10).
//!
//! The PE contains:
//!
//! * a 128-lane, 16-bit SIMD pipeline: 32-entry SIMD register file, 128
//!   functional units (ALU + multiplier with 32-bit MAC accumulators) and a
//!   multi-output adder tree ([`pe`]),
//! * a 64 KB multi-banked SIMD memory (4 banks × 32 lanes × 256 rows) with
//!   4 address-generation-unit pipelines ([`memory`], [`agu`]),
//! * the 128×128 **XRAM crossbar** shuffle network holding stored shuffle
//!   configurations, which doubles as the spare-lane bypass mechanism of
//!   the paper's global structural-duplication scheme ([`xram`]),
//! * a small scalar pipeline for sequential bookkeeping ([`isa`]),
//! * dual voltage domains: the SIMD datapath runs near-threshold while the
//!   memory system stays at full voltage; energy is accounted per domain
//!   ([`pe::PeStats`]),
//! * **timing-fault injection** driven by the architecture-level variation
//!   model of `ntv-core`, with three error-handling policies — silent
//!   corruption, SIMD-wide stall-and-retry, and test-time spare remapping
//!   through the crossbar ([`fault`]),
//! * DLP kernels from the digital-camera domain Diet SODA targets: vector
//!   ops, dot product, FIR filter, 2-D convolution and a 128-point
//!   fixed-point FFT, each validated against a golden model ([`kernels`]).
//!
//! # Example
//!
//! ```
//! use ntv_soda::pe::ProcessingElement;
//! use ntv_soda::kernels;
//!
//! let mut pe = ProcessingElement::new();
//! let a: Vec<i16> = (0..128).collect();
//! let b: Vec<i16> = (0..128).map(|i| 2 * i).collect();
//! let sum = kernels::vector_add(&mut pe, &a, &b).expect("runs");
//! assert_eq!(sum[5], 15);
//! assert!(pe.stats().cycles > 0);
//! ```

pub mod agu;
pub mod fault;
pub mod isa;
pub mod kernels;
pub mod memory;
pub mod pe;
pub mod xram;

pub use fault::{ErrorPolicy, FaultModel};
pub use pe::{PeError, PeStats, ProcessingElement};
pub use xram::{LaneMap, XramCrossbar};

/// SIMD datapath width of the Diet SODA PE.
pub const SIMD_WIDTH: usize = 128;

/// Number of SIMD memory banks.
pub const BANKS: usize = 4;

/// Lanes served by each memory bank.
pub const BANK_WIDTH: usize = SIMD_WIDTH / BANKS;

/// Rows per memory bank (16 KB per bank at 16-bit × 32 lanes).
pub const BANK_ROWS: usize = 256;

/// SIMD register-file entries.
pub const SIMD_REGS: usize = 32;

/// Scalar register count.
pub const SCALAR_REGS: usize = 16;

/// Scalar memory size in 16-bit words (4 KB).
pub const SCALAR_WORDS: usize = 2048;
