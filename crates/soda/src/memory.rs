//! The multi-banked SIMD memory system and scalar memory.
//!
//! Diet SODA's data memory is 64 KB arranged as 4 banks, each
//! 32 lanes × 16 bit × 256 rows (Appendix B). A 128-wide vector access
//! reads one row from each bank in parallel; the four AGU pipelines supply
//! an independent row address per bank, which is what makes strided and
//! 2-D block accesses single-cycle as long as the four quarters of the
//! vector land in distinct banks. The memory system lives in the
//! full-voltage domain (data-retention limits preclude near-threshold
//! SRAM), which matters for the energy accounting.

use serde::{Deserialize, Serialize};

use crate::{BANKS, BANK_ROWS, BANK_WIDTH, SCALAR_WORDS, SIMD_WIDTH};

/// Error type for out-of-range memory accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutOfRange {
    what: &'static str,
    index: usize,
    limit: usize,
}

impl std::fmt::Display for AccessOutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} index {} out of range (limit {})",
            self.what, self.index, self.limit
        )
    }
}

impl std::error::Error for AccessOutOfRange {}

/// The 4-bank SIMD data memory.
///
/// # Example
///
/// ```
/// use ntv_soda::memory::SimdMemory;
///
/// let mut mem = SimdMemory::new();
/// let row: Vec<i16> = (0..32).collect();
/// mem.write_bank_row(0, 3, &row)?;
/// assert_eq!(mem.read_bank_row(0, 3)?[31], 31);
/// # Ok::<(), ntv_soda::memory::AccessOutOfRange>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimdMemory {
    /// `banks[b][row][lane]`.
    banks: Vec<Vec<[i16; BANK_WIDTH]>>,
}

impl Default for SimdMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl SimdMemory {
    /// Zero-initialized memory.
    #[must_use]
    pub fn new() -> Self {
        Self {
            banks: vec![vec![[0; BANK_WIDTH]; BANK_ROWS]; BANKS],
        }
    }

    fn check_bank(bank: usize) -> Result<(), AccessOutOfRange> {
        if bank >= BANKS {
            return Err(AccessOutOfRange {
                what: "bank",
                index: bank,
                limit: BANKS,
            });
        }
        Ok(())
    }

    fn check_row(row: usize) -> Result<(), AccessOutOfRange> {
        if row >= BANK_ROWS {
            return Err(AccessOutOfRange {
                what: "row",
                index: row,
                limit: BANK_ROWS,
            });
        }
        Ok(())
    }

    /// Read one 32-wide row of a bank.
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfRange`] for an invalid bank or row.
    pub fn read_bank_row(
        &self,
        bank: usize,
        row: usize,
    ) -> Result<[i16; BANK_WIDTH], AccessOutOfRange> {
        Self::check_bank(bank)?;
        Self::check_row(row)?;
        // ntv:allow(panic-path): bank and row validated by the checks above
        Ok(self.banks[bank][row])
    }

    /// Write one 32-wide row of a bank.
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfRange`] for an invalid bank or row, or if
    /// `data` is not exactly 32 elements.
    pub fn write_bank_row(
        &mut self,
        bank: usize,
        row: usize,
        data: &[i16],
    ) -> Result<(), AccessOutOfRange> {
        Self::check_bank(bank)?;
        Self::check_row(row)?;
        if data.len() != BANK_WIDTH {
            return Err(AccessOutOfRange {
                what: "row width",
                index: data.len(),
                limit: BANK_WIDTH,
            });
        }
        // ntv:allow(panic-path): bank and row validated by the checks above
        self.banks[bank][row].copy_from_slice(data);
        Ok(())
    }

    /// Gather a full 128-wide vector: bank `b` contributes lanes
    /// `32b..32b+32` from its row `rows[b]`.
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfRange`] for an invalid row.
    pub fn read_vector(&self, rows: [usize; BANKS]) -> Result<Vec<i16>, AccessOutOfRange> {
        let mut out = Vec::with_capacity(SIMD_WIDTH);
        for (bank, &row) in rows.iter().enumerate() {
            out.extend_from_slice(&self.read_bank_row(bank, row)?);
        }
        Ok(out)
    }

    /// Scatter a full 128-wide vector (inverse of [`Self::read_vector`]).
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfRange`] for an invalid row or a vector that is
    /// not 128 elements wide.
    pub fn write_vector(
        &mut self,
        rows: [usize; BANKS],
        data: &[i16],
    ) -> Result<(), AccessOutOfRange> {
        if data.len() != SIMD_WIDTH {
            return Err(AccessOutOfRange {
                what: "vector width",
                index: data.len(),
                limit: SIMD_WIDTH,
            });
        }
        for (bank, &row) in rows.iter().enumerate() {
            self.write_bank_row(bank, row, &data[bank * BANK_WIDTH..(bank + 1) * BANK_WIDTH])?;
        }
        Ok(())
    }

    /// Load a contiguous slice of values row-major starting at row
    /// `first_row` (a host-side convenience for staging kernel inputs; the
    /// slice length must be a multiple of 128).
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfRange`] if the data overruns the memory.
    pub fn stage(&mut self, first_row: usize, data: &[i16]) -> Result<(), AccessOutOfRange> {
        if !data.len().is_multiple_of(SIMD_WIDTH) {
            return Err(AccessOutOfRange {
                what: "stage length (must be a multiple of 128)",
                index: data.len(),
                limit: SIMD_WIDTH,
            });
        }
        for (i, chunk) in data.chunks(SIMD_WIDTH).enumerate() {
            let row = first_row + i;
            self.write_vector([row, row, row, row], chunk)?;
        }
        Ok(())
    }

    /// Read back `rows` consecutive 128-wide vectors starting at
    /// `first_row` (inverse of [`Self::stage`]).
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfRange`] if the range overruns the memory.
    pub fn unstage(&self, first_row: usize, rows: usize) -> Result<Vec<i16>, AccessOutOfRange> {
        let mut out = Vec::with_capacity(rows * SIMD_WIDTH);
        for i in 0..rows {
            let row = first_row + i;
            out.extend(self.read_vector([row, row, row, row])?);
        }
        Ok(out)
    }
}

/// The 4 KB scalar memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarMemory {
    words: Vec<i16>,
}

impl Default for ScalarMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl ScalarMemory {
    /// Zero-initialized scalar memory.
    #[must_use]
    pub fn new() -> Self {
        Self {
            words: vec![0; SCALAR_WORDS],
        }
    }

    /// Read one word.
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfRange`] for an invalid address.
    pub fn read(&self, addr: usize) -> Result<i16, AccessOutOfRange> {
        self.words.get(addr).copied().ok_or(AccessOutOfRange {
            what: "scalar address",
            index: addr,
            limit: SCALAR_WORDS,
        })
    }

    /// Write one word.
    ///
    /// # Errors
    ///
    /// Returns [`AccessOutOfRange`] for an invalid address.
    pub fn write(&mut self, addr: usize, value: i16) -> Result<(), AccessOutOfRange> {
        if addr >= SCALAR_WORDS {
            return Err(AccessOutOfRange {
                what: "scalar address",
                index: addr,
                limit: SCALAR_WORDS,
            });
        }
        // ntv:allow(panic-path): addr validated against SCALAR_WORDS above
        self.words[addr] = value;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_rows_round_trip() {
        let mut mem = SimdMemory::new();
        let row: Vec<i16> = (100..132).collect();
        mem.write_bank_row(2, 17, &row).unwrap();
        assert_eq!(mem.read_bank_row(2, 17).unwrap().to_vec(), row);
        // Other banks untouched.
        assert_eq!(mem.read_bank_row(1, 17).unwrap(), [0; BANK_WIDTH]);
    }

    #[test]
    fn vector_access_spans_banks() {
        let mut mem = SimdMemory::new();
        let v: Vec<i16> = (0..128).collect();
        mem.write_vector([5, 6, 7, 8], &v).unwrap();
        assert_eq!(mem.read_vector([5, 6, 7, 8]).unwrap(), v);
        // Bank 1 row 6 holds lanes 32..64.
        assert_eq!(mem.read_bank_row(1, 6).unwrap()[0], 32);
    }

    #[test]
    fn stage_unstage_round_trip() {
        let mut mem = SimdMemory::new();
        let data: Vec<i16> = (0..384).map(|i| (i % 251) as i16).collect();
        mem.stage(10, &data).unwrap();
        assert_eq!(mem.unstage(10, 3).unwrap(), data);
    }

    #[test]
    fn capacity_matches_64_kb() {
        // 4 banks x 256 rows x 32 lanes x 2 bytes = 64 KB.
        assert_eq!(BANKS * BANK_ROWS * BANK_WIDTH * 2, 65_536);
    }

    #[test]
    fn out_of_range_errors() {
        let mut mem = SimdMemory::new();
        assert!(mem.read_bank_row(4, 0).is_err());
        assert!(mem.read_bank_row(0, 256).is_err());
        assert!(mem.write_bank_row(0, 0, &[0; 31]).is_err());
        assert!(mem.stage(255, &[0; 256]).is_err());
        let msg = mem.read_bank_row(9, 0).unwrap_err().to_string();
        assert!(msg.contains("bank index 9"));
    }

    #[test]
    fn scalar_memory_round_trip() {
        let mut sm = ScalarMemory::new();
        sm.write(100, -5).unwrap();
        assert_eq!(sm.read(100).unwrap(), -5);
        assert!(sm.read(SCALAR_WORDS).is_err());
        assert!(sm.write(SCALAR_WORDS, 0).is_err());
    }
}
