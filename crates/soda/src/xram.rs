//! The XRAM 128×128 crossbar (SIMD shuffle network).
//!
//! Satpathy et al.'s XRAM stores shuffle configurations *inside* the
//! crossbar's cross points (SRAM-cell topology), so switching between
//! pre-loaded permutations is a single-cycle operation. Diet SODA uses it
//! for data alignment (2-D access patterns, FFT butterflies) and the paper
//! reuses it for **global spare-lane bypass** (Appendix D, Fig 12): faulty
//! functional units identified at test time are simply never selected as
//! crossbar outputs.

use serde::{Deserialize, Serialize};

/// One stored shuffle configuration: `output[i] = input[select[i]]`.
///
/// Multicast is allowed (several outputs may select the same input), as in
/// the real XRAM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShuffleConfig {
    select: Vec<usize>,
}

impl ShuffleConfig {
    /// Configuration from an explicit per-output source-lane table.
    ///
    /// # Panics
    ///
    /// Panics if any source index is out of range for the config's width.
    #[must_use]
    pub fn new(select: Vec<usize>) -> Self {
        let width = select.len();
        assert!(width > 0, "a shuffle needs at least one lane");
        for (out, &src) in select.iter().enumerate() {
            assert!(src < width, "output {out} selects nonexistent input {src}");
        }
        Self { select }
    }

    /// The identity shuffle of the given width.
    #[must_use]
    pub fn identity(width: usize) -> Self {
        Self::new((0..width).collect())
    }

    /// Butterfly exchange used by FFT stage `stage`: lane `i` reads from
    /// lane `i XOR 2^stage`.
    ///
    /// # Panics
    ///
    /// Panics if `2^stage >= width` or `width` is not a power of two.
    #[must_use]
    pub fn butterfly(width: usize, stage: u32) -> Self {
        assert!(
            width.is_power_of_two(),
            "butterfly needs a power-of-two width"
        );
        let span = 1usize << stage;
        assert!(span < width, "butterfly span {span} exceeds width {width}");
        Self::new((0..width).map(|i| i ^ span).collect())
    }

    /// Cyclic rotation by `shift` lanes (lane `i` reads from
    /// `(i + shift) mod width`) — the alignment shuffle for strided loads.
    #[must_use]
    pub fn rotate(width: usize, shift: usize) -> Self {
        Self::new((0..width).map(|i| (i + shift) % width).collect())
    }

    /// Broadcast lane `src` to every output.
    ///
    /// # Panics
    ///
    /// Panics if `src >= width`.
    #[must_use]
    pub fn broadcast(width: usize, src: usize) -> Self {
        assert!(src < width, "broadcast source {src} out of range");
        Self::new(vec![src; width])
    }

    /// Lane count.
    #[must_use]
    pub fn width(&self) -> usize {
        self.select.len()
    }

    /// The per-output source table.
    #[must_use]
    pub fn as_select_table(&self) -> &[usize] {
        &self.select
    }

    /// Whether the configuration is a permutation (no multicast).
    #[must_use]
    pub fn is_permutation(&self) -> bool {
        let mut seen = vec![false; self.select.len()];
        for &s in &self.select {
            if seen[s] {
                return false;
            }
            seen[s] = true;
        }
        true
    }

    /// Apply the shuffle to a data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` differs from the configuration width.
    pub fn apply<T: Copy>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.width(), "data width mismatch");
        self.select.iter().map(|&s| data[s]).collect()
    }
}

/// Logical-to-physical lane mapping for global spare bypass (Appendix D).
///
/// A datapath fabricated with `physical` lanes of which some are marked
/// faulty at test time exposes `physical − faulty` usable lanes; the map
/// routes logical lane `l` to the `l`-th healthy physical lane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneMap {
    to_physical: Vec<usize>,
    physical: usize,
}

impl LaneMap {
    /// Identity map over `lanes` healthy physical lanes.
    #[must_use]
    pub fn identity(lanes: usize) -> Self {
        Self {
            to_physical: (0..lanes).collect(),
            physical: lanes,
        }
    }

    /// Map `logical` lanes onto `physical` lanes, skipping `faulty` ones.
    ///
    /// # Errors
    ///
    /// Returns [`NotEnoughLanes`] when fewer than `logical` healthy lanes
    /// remain — the condition in which local sparing schemes give up and
    /// the chip must be slowed down or margined instead.
    pub fn with_faulty(
        logical: usize,
        physical: usize,
        faulty: &[usize],
    ) -> Result<Self, NotEnoughLanes> {
        let mut is_faulty = vec![false; physical];
        for &f in faulty {
            assert!(f < physical, "faulty lane {f} out of range");
            is_faulty[f] = true;
        }
        let healthy: Vec<usize> = (0..physical).filter(|&l| !is_faulty[l]).collect();
        if healthy.len() < logical {
            return Err(NotEnoughLanes {
                needed: logical,
                healthy: healthy.len(),
            });
        }
        Ok(Self {
            // ntv:allow(panic-path): healthy.len() >= logical checked just above
            to_physical: healthy[..logical].to_vec(),
            physical,
        })
    }

    /// Number of logical lanes.
    #[must_use]
    pub fn logical_lanes(&self) -> usize {
        self.to_physical.len()
    }

    /// Number of physical lanes behind the map.
    #[must_use]
    pub fn physical_lanes(&self) -> usize {
        self.physical
    }

    /// Physical lane backing logical lane `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    #[must_use]
    pub fn physical(&self, l: usize) -> usize {
        // ntv:allow(panic-path): documented panic (see `# Panics`); map width equals logical_lanes()
        self.to_physical[l]
    }

    /// Whether any remapping is in effect.
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.to_physical.iter().enumerate().all(|(l, &p)| l == p)
    }
}

/// Error: not enough healthy lanes to satisfy the logical width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotEnoughLanes {
    /// Logical lanes requested.
    pub needed: usize,
    /// Healthy physical lanes available.
    pub healthy: usize,
}

impl std::fmt::Display for NotEnoughLanes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "need {} healthy lanes but only {} remain",
            self.needed, self.healthy
        )
    }
}

impl std::error::Error for NotEnoughLanes {}

/// The crossbar: a bank of stored [`ShuffleConfig`]s plus the active lane
/// map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XramCrossbar {
    width: usize,
    configs: Vec<ShuffleConfig>,
    lane_map: LaneMap,
}

impl XramCrossbar {
    /// A crossbar of the given width with an identity lane map and no
    /// stored configurations.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "crossbar width must be positive");
        Self {
            width,
            configs: Vec::new(),
            lane_map: LaneMap::identity(width),
        }
    }

    /// Crossbar width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Store a configuration, returning its slot index.
    ///
    /// # Panics
    ///
    /// Panics if the configuration width mismatches the crossbar.
    pub fn store(&mut self, config: ShuffleConfig) -> usize {
        assert_eq!(config.width(), self.width, "configuration width mismatch");
        self.configs.push(config);
        self.configs.len() - 1
    }

    /// Number of stored configurations.
    #[must_use]
    pub fn config_count(&self) -> usize {
        self.configs.len()
    }

    /// Stored configuration by slot.
    #[must_use]
    pub fn config(&self, slot: usize) -> Option<&ShuffleConfig> {
        self.configs.get(slot)
    }

    /// Replace the active lane map (test-time spare bypass).
    ///
    /// # Panics
    ///
    /// Panics if the map's logical width mismatches the crossbar.
    pub fn set_lane_map(&mut self, map: LaneMap) {
        assert_eq!(map.logical_lanes(), self.width, "lane map width mismatch");
        self.lane_map = map;
    }

    /// The active lane map.
    #[must_use]
    pub fn lane_map(&self) -> &LaneMap {
        &self.lane_map
    }

    /// Apply stored configuration `slot` to `data`, or `None` if the slot
    /// holds no configuration.
    #[must_use]
    pub fn try_shuffle<T: Copy>(&self, slot: usize, data: &[T]) -> Option<Vec<T>> {
        Some(self.configs.get(slot)?.apply(data))
    }

    /// Apply stored configuration `slot` to `data`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` does not exist or `data` width mismatches; use
    /// [`XbarRam::try_shuffle`] to handle a missing slot without panicking.
    pub fn shuffle<T: Copy>(&self, slot: usize, data: &[T]) -> Vec<T> {
        assert!(
            slot < self.configs.len(),
            "no stored shuffle configuration in slot {slot}"
        );
        // ntv:allow(panic-path): slot bound asserted just above; `try_shuffle` is the total API
        self.configs[slot].apply(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let c = ShuffleConfig::identity(8);
        let data: Vec<i16> = (0..8).collect();
        assert_eq!(c.apply(&data), data);
        assert!(c.is_permutation());
    }

    #[test]
    fn butterfly_is_an_involution() {
        let c = ShuffleConfig::butterfly(16, 2);
        let data: Vec<i16> = (0..16).collect();
        let once = c.apply(&data);
        assert_ne!(once, data);
        assert_eq!(c.apply(&once), data);
        assert!(c.is_permutation());
    }

    #[test]
    fn rotation_shifts() {
        let c = ShuffleConfig::rotate(4, 1);
        assert_eq!(c.apply(&[10, 20, 30, 40]), vec![20, 30, 40, 10]);
    }

    #[test]
    fn broadcast_is_multicast() {
        let c = ShuffleConfig::broadcast(4, 2);
        assert_eq!(c.apply(&[1, 2, 3, 4]), vec![3, 3, 3, 3]);
        assert!(!c.is_permutation());
    }

    #[test]
    fn lane_map_skips_faulty() {
        // Appendix D example: 10 physical lanes (8 + 2 spares), lanes 2 and
        // 3 faulty; all 8 logical lanes remain usable.
        let map = LaneMap::with_faulty(8, 10, &[2, 3]).expect("repairable");
        assert_eq!(map.logical_lanes(), 8);
        let backing: Vec<usize> = (0..8).map(|l| map.physical(l)).collect();
        assert_eq!(backing, vec![0, 1, 4, 5, 6, 7, 8, 9]);
        assert!(!map.is_identity());
    }

    #[test]
    fn lane_map_reports_unrepairable() {
        let err = LaneMap::with_faulty(8, 9, &[0, 1]).expect_err("too many faults");
        assert_eq!(err.needed, 8);
        assert_eq!(err.healthy, 7);
        assert!(err.to_string().contains("only 7 remain"));
    }

    #[test]
    fn crossbar_stores_and_applies() {
        let mut x = XramCrossbar::new(4);
        let rot = x.store(ShuffleConfig::rotate(4, 2));
        let bcast = x.store(ShuffleConfig::broadcast(4, 0));
        assert_eq!(x.config_count(), 2);
        assert_eq!(x.shuffle(rot, &[1, 2, 3, 4]), vec![3, 4, 1, 2]);
        assert_eq!(x.shuffle(bcast, &[7, 2, 3, 4]), vec![7, 7, 7, 7]);
    }

    #[test]
    #[should_panic(expected = "no stored shuffle configuration")]
    fn missing_slot_panics() {
        let x = XramCrossbar::new(4);
        let _ = x.shuffle(0, &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "nonexistent input")]
    fn invalid_select_rejected() {
        let _ = ShuffleConfig::new(vec![0, 5, 1, 2]);
    }
}
