//! DLP kernels for the Diet SODA PE, with golden reference models.
//!
//! Diet SODA targets digital-camera signal processing; these kernels cover
//! that domain's staples — element-wise vector arithmetic, dot products,
//! FIR filtering, 2-D convolution and a 128-point fixed-point FFT — built
//! from the PE's instruction set the way a kernel compiler would emit
//! them (unrolled, with addresses and constants resolved at build time).
//!
//! Every kernel has a bit-exact (or tolerance-bounded, for the FFT) golden
//! model in [`golden`]; the integration tests in `tests/` run kernels
//! under fault injection and compare against these references.

use crate::agu::AccessPattern;
use crate::isa::{Instr, SReg, VBinOp, VReg};
use crate::pe::{PeError, ProcessingElement};
use crate::xram::ShuffleConfig;
use crate::SIMD_WIDTH;

/// Golden (scalar) reference implementations.
pub mod golden {
    /// Saturating 16-bit addition, element-wise.
    #[must_use]
    pub fn vector_add(a: &[i16], b: &[i16]) -> Vec<i16> {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| x.saturating_add(y))
            .collect()
    }

    /// Dot product with 32-bit accumulation, shifted and saturated to i16.
    #[must_use]
    pub fn dot(a: &[i16], b: &[i16], shift: u8) -> i16 {
        let acc: i32 = a
            .iter()
            .zip(b)
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        (acc >> shift).clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16
    }

    /// FIR filter: `out[i] = sat16((Σ_k c[k]·x[i+k]) >> shift)`.
    #[must_use]
    pub fn fir(signal: &[i16], coeffs: &[i16], shift: u8) -> Vec<i16> {
        let n = signal.len() - coeffs.len() + 1;
        (0..n)
            .map(|i| {
                let acc: i32 = coeffs
                    .iter()
                    .enumerate()
                    .map(|(k, &c)| i32::from(c) * i32::from(signal[i + k]))
                    .sum();
                (acc >> shift).clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16
            })
            .collect()
    }

    /// 3×3 convolution over rows of width 128, circular in the column
    /// dimension, valid in the row dimension.
    #[must_use]
    pub fn conv2d_3x3(image: &[Vec<i16>], kernel: &[[i16; 3]; 3], shift: u8) -> Vec<Vec<i16>> {
        let width = 128usize;
        (0..image.len().saturating_sub(2))
            .map(|r| {
                (0..width)
                    .map(|c| {
                        let mut acc = 0i32;
                        for (dr, krow) in kernel.iter().enumerate() {
                            for (dc, &k) in krow.iter().enumerate() {
                                acc += i32::from(k) * i32::from(image[r + dr][(c + dc) % width]);
                            }
                        }
                        (acc >> shift).clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16
                    })
                    .collect()
            })
            .collect()
    }

    /// Floating-point DFT of a complex signal, scaled by `1/n` (matching
    /// the fixed-point FFT's per-stage halving).
    #[must_use]
    pub fn dft_scaled(re: &[i16], im: &[i16]) -> (Vec<f64>, Vec<f64>) {
        let n = re.len();
        let mut out_re = vec![0.0; n];
        let mut out_im = vec![0.0; n];
        for (k, (or_, oi)) in out_re.iter_mut().zip(out_im.iter_mut()).enumerate() {
            for t in 0..n {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                let (s, c) = ang.sin_cos();
                *or_ += f64::from(re[t]) * c - f64::from(im[t]) * s;
                *oi += f64::from(re[t]) * s + f64::from(im[t]) * c;
            }
            *or_ /= n as f64;
            *oi /= n as f64;
        }
        (out_re, out_im)
    }
}

fn v(i: u8) -> VReg {
    VReg::new(i)
}

fn s(i: u8) -> SReg {
    SReg::new(i)
}

/// Element-wise saturating vector addition of two 128-element vectors,
/// through memory (stage → load → add → store → unstage).
///
/// # Errors
///
/// Propagates any [`PeError`] from execution.
///
/// # Panics
///
/// Panics if the inputs are not 128 elements each.
pub fn vector_add(pe: &mut ProcessingElement, a: &[i16], b: &[i16]) -> Result<Vec<i16>, PeError> {
    assert_eq!(a.len(), SIMD_WIDTH, "inputs must be 128 wide");
    assert_eq!(b.len(), SIMD_WIDTH, "inputs must be 128 wide");
    pe.mem_mut().stage(0, a)?;
    pe.mem_mut().stage(1, b)?;
    pe.run(&[
        Instr::VLoad {
            vd: v(0),
            rows: [0; 4],
        },
        Instr::VLoad {
            vd: v(1),
            rows: [1; 4],
        },
        Instr::VBin {
            op: VBinOp::Add,
            vd: v(2),
            va: v(0),
            vb: v(1),
        },
        Instr::VStore {
            vs: v(2),
            rows: [2; 4],
        },
    ])?;
    Ok(pe.mem().unstage(2, 1)?)
}

/// Dot product of two 128-element vectors via the MAC units and the adder
/// tree: `sat16((Σ aᵢ·bᵢ·2⁻ᵐᵃᶜ) collapsed through the tree)`.
///
/// `mac_shift` scales the per-lane products before the 16-bit tree;
/// `tree_shift` scales the final sum.
///
/// # Errors
///
/// Propagates any [`PeError`] from execution.
///
/// # Panics
///
/// Panics if the inputs are not 128 elements each.
pub fn dot_product(
    pe: &mut ProcessingElement,
    a: &[i16],
    b: &[i16],
    mac_shift: u8,
    tree_shift: u8,
) -> Result<i16, PeError> {
    assert_eq!(a.len(), SIMD_WIDTH, "inputs must be 128 wide");
    assert_eq!(b.len(), SIMD_WIDTH, "inputs must be 128 wide");
    pe.set_vreg(v(0), a);
    pe.set_vreg(v(1), b);
    pe.run(&[
        Instr::VMacClear,
        Instr::VMac { va: v(0), vb: v(1) },
        Instr::VMacRead {
            vd: v(2),
            shift: mac_shift,
        },
        Instr::Reduce {
            sd: s(0),
            va: v(2),
            shift: tree_shift,
        },
    ])?;
    Ok(pe.sreg(0))
}

/// FIR filter over a staged signal using the prefetcher's unaligned loads.
///
/// `signal.len()` must be a multiple of 128 and at least 256; the final
/// 128 samples serve as the convolution halo, so the output has
/// `signal.len() − 128` samples. `coeffs.len()` must be ≤ 128.
///
/// # Errors
///
/// Propagates any [`PeError`] from execution.
///
/// # Panics
///
/// Panics on invalid signal/coefficient shapes.
pub fn fir(
    pe: &mut ProcessingElement,
    signal: &[i16],
    coeffs: &[i16],
    shift: u8,
) -> Result<Vec<i16>, PeError> {
    assert!(
        signal.len().is_multiple_of(SIMD_WIDTH) && signal.len() >= 2 * SIMD_WIDTH,
        "signal must be a multiple of 128 samples and at least 256"
    );
    assert!(
        !coeffs.is_empty() && coeffs.len() <= SIMD_WIDTH,
        "between 1 and 128 taps supported"
    );
    let blocks = signal.len() / SIMD_WIDTH - 1;
    let out_base = 200; // staged signal occupies rows 0..blocks+1
    assert!(blocks < out_base, "signal too long for the staging layout");
    pe.mem_mut().stage(0, signal)?;

    let mut program = Vec::new();
    for b in 0..blocks {
        program.push(Instr::VMacClear);
        for (k, &c) in coeffs.iter().enumerate() {
            program.push(Instr::BroadcastImm { vd: v(1), value: c });
            program.push(Instr::VLoadUnaligned {
                vd: v(0),
                first_row: b,
                offset: k,
            });
            program.push(Instr::VMac { va: v(0), vb: v(1) });
        }
        program.push(Instr::VMacRead { vd: v(2), shift });
        program.push(Instr::VStore {
            vs: v(2),
            rows: [out_base + b; 4],
        });
    }
    pe.run(&program)?;
    Ok(pe.mem().unstage(out_base, blocks)?)
}

/// 3×3 2-D convolution over an image of 128-wide rows (circular in the
/// column dimension, valid in the row dimension), using rotation shuffles
/// through the XRAM crossbar for column alignment.
///
/// # Errors
///
/// Propagates any [`PeError`] from execution.
///
/// # Panics
///
/// Panics if the image has fewer than 3 rows or any row is not 128 wide.
pub fn conv2d_3x3(
    pe: &mut ProcessingElement,
    image: &[Vec<i16>],
    kernel: &[[i16; 3]; 3],
    shift: u8,
) -> Result<Vec<Vec<i16>>, PeError> {
    assert!(image.len() >= 3, "need at least 3 image rows");
    assert!(
        image.iter().all(|r| r.len() == SIMD_WIDTH),
        "rows must be 128 wide"
    );
    let out_rows = image.len() - 2;
    let out_base = 128;
    assert!(
        image.len() <= out_base && out_base + out_rows <= 256,
        "image too tall"
    );

    for (r, row) in image.iter().enumerate() {
        pe.mem_mut().stage(r, row)?;
    }
    let rot1 = pe.store_shuffle(ShuffleConfig::rotate(SIMD_WIDTH, 1));
    let rot2 = pe.store_shuffle(ShuffleConfig::rotate(SIMD_WIDTH, 2));

    // The 2-D tile walk (out_rows x 3 kernel rows) is one AGU block
    // pattern: access (r, dr) reads image row r + dr.
    let walk = AccessPattern::Block {
        base: 0,
        rows: out_rows,
        cols: 3,
        row_stride: 1,
    };
    debug_assert!(walk.validate().is_ok());

    let mut program = Vec::new();
    for r in 0..out_rows {
        program.push(Instr::VMacClear);
        for (dr, krow) in kernel.iter().enumerate() {
            program.push(Instr::VLoad {
                vd: v(0),
                rows: walk.rows(r * 3 + dr),
            });
            for (dc, &coeff) in krow.iter().enumerate() {
                let src = match dc {
                    0 => v(0),
                    1 => {
                        program.push(Instr::Shuffle {
                            vd: v(1),
                            va: v(0),
                            slot: rot1,
                        });
                        v(1)
                    }
                    _ => {
                        program.push(Instr::Shuffle {
                            vd: v(2),
                            va: v(0),
                            slot: rot2,
                        });
                        v(2)
                    }
                };
                program.push(Instr::BroadcastImm {
                    vd: v(3),
                    value: coeff,
                });
                program.push(Instr::VMac { va: src, vb: v(3) });
            }
        }
        program.push(Instr::VMacRead { vd: v(4), shift });
        program.push(Instr::VStore {
            vs: v(4),
            rows: [out_base + r; 4],
        });
    }
    pe.run(&program)?;

    (0..out_rows)
        .map(|r| Ok(pe.mem().unstage(out_base + r, 1)?))
        .collect()
}

/// Matrix–vector product through the MAC units and the adder tree:
/// `y[r] = sat16((Σ_c m[r][c]·x[c]) >> shift)` for an `R × 128` matrix.
///
/// Each output element is one MAC pass over a matrix row followed by a
/// full 128-lane adder-tree reduction — the access pattern of the
/// beamforming/color-transform stages in Diet SODA's target workloads.
///
/// # Errors
///
/// Propagates any [`PeError`] from execution.
///
/// # Panics
///
/// Panics if any matrix row or the vector is not 128 elements, or the
/// matrix has more than 64 rows (staging layout limit).
pub fn matvec(
    pe: &mut ProcessingElement,
    matrix: &[Vec<i16>],
    x: &[i16],
    mac_shift: u8,
    tree_shift: u8,
) -> Result<Vec<i16>, PeError> {
    assert_eq!(x.len(), SIMD_WIDTH, "vector must be 128 wide");
    assert!(matrix.len() <= 64, "at most 64 matrix rows supported");
    assert!(
        matrix.iter().all(|r| r.len() == SIMD_WIDTH),
        "rows must be 128 wide"
    );

    for (r, row) in matrix.iter().enumerate() {
        pe.mem_mut().stage(r, row)?;
    }
    pe.set_vreg(v(0), x);

    // Row addresses come from one AGU linear pattern.
    let pattern = AccessPattern::Linear {
        base: 0,
        stride: 1,
        count: matrix.len(),
    };
    debug_assert!(pattern.validate().is_ok());
    let mut out = Vec::with_capacity(matrix.len());
    for rows in pattern.iter() {
        pe.run(&[
            Instr::VLoad { vd: v(1), rows },
            Instr::VMacClear,
            Instr::VMac { va: v(0), vb: v(1) },
            Instr::VMacRead {
                vd: v(2),
                shift: mac_shift,
            },
            Instr::Reduce {
                sd: s(0),
                va: v(2),
                shift: tree_shift,
            },
        ])?;
        out.push(pe.sreg(0));
    }
    Ok(out)
}

/// Golden matrix–vector reference matching [`matvec`]'s two-stage rounding.
#[must_use]
pub fn golden_matvec(matrix: &[Vec<i16>], x: &[i16], mac_shift: u8, tree_shift: u8) -> Vec<i16> {
    matrix
        .iter()
        .map(|row| {
            let per_lane: i64 = row
                .iter()
                .zip(x)
                .map(|(&m, &v)| {
                    i64::from((i32::from(m) * i32::from(v)) >> mac_shift).clamp(-32768, 32767)
                })
                .sum();
            ((per_lane >> tree_shift).clamp(-32768, 32767)) as i16
        })
        .collect()
}

/// Bilinear green-channel interpolation for one Bayer RG row (the
/// demosaic inner loop of Diet SODA's digital-camera pipeline).
///
/// Input is a 128-pixel raw row with the RGGB pattern's `R G R G …`
/// layout: green samples sit at odd lanes. The kernel reconstructs a full
/// green row — pass-through where green was sampled, the average of the
/// circular left/right neighbours where it was not — using mask
/// predication (0/1 mask vectors and `Mul`/`Add`) plus rotation shuffles
/// through the crossbar.
///
/// # Errors
///
/// Propagates any [`PeError`] from execution.
///
/// # Panics
///
/// Panics if the row is not 128 pixels.
pub fn bayer_green_interp(pe: &mut ProcessingElement, raw: &[i16]) -> Result<Vec<i16>, PeError> {
    assert_eq!(raw.len(), SIMD_WIDTH, "rows must be 128 pixels");
    // Masks: 1 where green is sampled (odd lanes), 0 elsewhere.
    let gmask: Vec<i16> = (0..SIMD_WIDTH).map(|i| i16::from(i % 2 == 1)).collect();
    let rmask: Vec<i16> = (0..SIMD_WIDTH).map(|i| i16::from(i % 2 == 0)).collect();
    pe.mem_mut().stage(0, raw)?;
    pe.mem_mut().stage(1, &gmask)?;
    pe.mem_mut().stage(2, &rmask)?;
    let left = pe.store_shuffle(ShuffleConfig::rotate(SIMD_WIDTH, SIMD_WIDTH - 1));
    let right = pe.store_shuffle(ShuffleConfig::rotate(SIMD_WIDTH, 1));

    pe.run(&[
        Instr::VLoad {
            vd: v(0),
            rows: [0; 4],
        }, // raw
        Instr::VLoad {
            vd: v(1),
            rows: [1; 4],
        }, // gmask
        Instr::VLoad {
            vd: v(2),
            rows: [2; 4],
        }, // rmask
        // Neighbour average: (raw<<1 + raw>>1) / 2, valid at non-green lanes
        // because both circular neighbours of a red lane are green.
        Instr::Shuffle {
            vd: v(3),
            va: v(0),
            slot: left,
        },
        Instr::Shuffle {
            vd: v(4),
            va: v(0),
            slot: right,
        },
        Instr::VBin {
            op: VBinOp::Add,
            vd: v(5),
            va: v(3),
            vb: v(4),
        },
        Instr::VUn {
            op: crate::isa::VUnOp::SarImm(1),
            vd: v(5),
            va: v(5),
        },
        // Predicated select: out = raw*gmask + avg*rmask.
        Instr::VBin {
            op: VBinOp::Mul,
            vd: v(6),
            va: v(0),
            vb: v(1),
        },
        Instr::VBin {
            op: VBinOp::Mul,
            vd: v(7),
            va: v(5),
            vb: v(2),
        },
        Instr::VBin {
            op: VBinOp::Add,
            vd: v(8),
            va: v(6),
            vb: v(7),
        },
        Instr::VStore {
            vs: v(8),
            rows: [3; 4],
        },
    ])?;
    Ok(pe.mem().unstage(3, 1)?)
}

/// Golden reference for [`bayer_green_interp`] (circular neighbours).
#[must_use]
pub fn golden_bayer_green(raw: &[i16]) -> Vec<i16> {
    let n = raw.len();
    (0..n)
        .map(|i| {
            if i % 2 == 1 {
                raw[i]
            } else {
                let l = raw[(i + n - 1) % n];
                let r = raw[(i + 1) % n];
                ((i32::from(l) + i32::from(r)) >> 1) as i16
            }
        })
        .collect()
}

/// Per-pixel binary threshold: `out[l] = if x[l] > t { hi } else { lo }` —
/// the predication pattern (CmpGt mask + VSel) used by feature-detection
/// stages, exercised on the SIMD FUs without branches.
///
/// # Errors
///
/// Propagates any [`PeError`] from execution.
///
/// # Panics
///
/// Panics if the input is not 128 elements.
pub fn threshold(
    pe: &mut ProcessingElement,
    x: &[i16],
    t: i16,
    hi: i16,
    lo: i16,
) -> Result<Vec<i16>, PeError> {
    assert_eq!(x.len(), SIMD_WIDTH, "input must be 128 wide");
    pe.set_vreg(v(0), x);
    pe.run(&[
        Instr::BroadcastImm { vd: v(1), value: t },
        Instr::VBin {
            op: VBinOp::CmpGt,
            vd: v(2),
            va: v(0),
            vb: v(1),
        },
        Instr::BroadcastImm {
            vd: v(3),
            value: hi,
        },
        Instr::BroadcastImm {
            vd: v(4),
            value: lo,
        },
        Instr::VSel {
            vd: v(5),
            mask: v(2),
            va: v(3),
            vb: v(4),
        },
    ])?;
    Ok(pe.vreg(v(5)).to_vec())
}

/// Convert a float in `[-1, 1]` to Q15.
fn q15(x: f64) -> i16 {
    (x * 32767.0).round().clamp(-32768.0, 32767.0) as i16
}

/// 128-point radix-2 DIT fixed-point FFT of a complex Q15 signal, using
/// butterfly shuffles through the XRAM crossbar and per-stage halving for
/// overflow control (so the result approximates `DFT/128`).
///
/// Per stage, with `t = W ⊛ X` (lane-wise twiddle multiply; `W = 1` on
/// lower butterfly lanes) and `p` the butterfly-partner exchange of `t`:
/// `X' = (sign·t + p) / 2`, where `sign` is `+1` on lower and `−1` on
/// upper lanes — the classic SIMD butterfly factorization.
///
/// # Errors
///
/// Propagates any [`PeError`] from execution.
///
/// # Panics
///
/// Panics if the inputs are not 128 elements each.
pub fn fft128(
    pe: &mut ProcessingElement,
    re: &[i16],
    im: &[i16],
) -> Result<(Vec<i16>, Vec<i16>), PeError> {
    assert_eq!(re.len(), SIMD_WIDTH, "inputs must be 128 wide");
    assert_eq!(im.len(), SIMD_WIDTH, "inputs must be 128 wide");
    let n = SIMD_WIDTH;
    let stages = 7u32;

    // Bit-reversal permutation (input reorder of decimation-in-time).
    let bitrev = ShuffleConfig::new(
        (0..n)
            .map(|i| (i as u32).reverse_bits() as usize >> (32 - stages))
            .collect(),
    );
    let bitrev_slot = pe.store_shuffle(bitrev);

    // Per-stage twiddle/sign tables, staged into SIMD memory rows 100..=120.
    let table_base = 100usize;
    let mut butterfly_slots = Vec::new();
    for stage in 0..stages {
        let span = 1usize << stage;
        let mut wre = vec![0i16; n];
        let mut wim = vec![0i16; n];
        let mut sign = vec![0i16; n];
        for i in 0..n {
            if i & span == 0 {
                wre[i] = q15(1.0 - f64::EPSILON); // ~+1.0 in Q15
                wim[i] = 0;
                sign[i] = 1;
            } else {
                let k = (i & (span - 1)) as f64;
                let ang = -std::f64::consts::PI * k / span as f64;
                wre[i] = q15(ang.cos());
                wim[i] = q15(ang.sin());
                sign[i] = -1;
            }
        }
        let row = table_base + 3 * stage as usize;
        pe.mem_mut().stage(row, &wre)?;
        pe.mem_mut().stage(row + 1, &wim)?;
        pe.mem_mut().stage(row + 2, &sign)?;
        butterfly_slots.push(pe.store_shuffle(ShuffleConfig::butterfly(n, stage)));
    }

    // Register allocation: v0/v1 = X(re/im); v2/v3 = W; v4 = sign;
    // v5..v8 = scratch; v9/v10 = t; v11/v12 = partner.
    pe.set_vreg(v(0), re);
    pe.set_vreg(v(1), im);

    let mut program = vec![
        Instr::Shuffle {
            vd: v(0),
            va: v(0),
            slot: bitrev_slot,
        },
        Instr::Shuffle {
            vd: v(1),
            va: v(1),
            slot: bitrev_slot,
        },
    ];
    for (stage, &bf) in butterfly_slots.iter().enumerate() {
        let row = table_base + 3 * stage;
        program.extend([
            Instr::VLoad {
                vd: v(2),
                rows: [row; 4],
            }, // Wre
            Instr::VLoad {
                vd: v(3),
                rows: [row + 1; 4],
            }, // Wim
            Instr::VLoad {
                vd: v(4),
                rows: [row + 2; 4],
            }, // sign
            // t = X * W (complex, Q15).
            Instr::VBin {
                op: VBinOp::MulQ15,
                vd: v(5),
                va: v(0),
                vb: v(2),
            }, // re*Wre
            Instr::VBin {
                op: VBinOp::MulQ15,
                vd: v(6),
                va: v(1),
                vb: v(3),
            }, // im*Wim
            Instr::VBin {
                op: VBinOp::Sub,
                vd: v(9),
                va: v(5),
                vb: v(6),
            }, // t_re
            Instr::VBin {
                op: VBinOp::MulQ15,
                vd: v(7),
                va: v(0),
                vb: v(3),
            }, // re*Wim
            Instr::VBin {
                op: VBinOp::MulQ15,
                vd: v(8),
                va: v(1),
                vb: v(2),
            }, // im*Wre
            Instr::VBin {
                op: VBinOp::Add,
                vd: v(10),
                va: v(7),
                vb: v(8),
            }, // t_im
            // p = butterfly partner of t.
            Instr::Shuffle {
                vd: v(11),
                va: v(9),
                slot: bf,
            },
            Instr::Shuffle {
                vd: v(12),
                va: v(10),
                slot: bf,
            },
            // X' = (sign*t + p) >> 1.
            Instr::VBin {
                op: VBinOp::Mul,
                vd: v(5),
                va: v(9),
                vb: v(4),
            },
            Instr::VBin {
                op: VBinOp::Add,
                vd: v(5),
                va: v(5),
                vb: v(11),
            },
            Instr::VUn {
                op: crate::isa::VUnOp::SarImm(1),
                vd: v(0),
                va: v(5),
            },
            Instr::VBin {
                op: VBinOp::Mul,
                vd: v(6),
                va: v(10),
                vb: v(4),
            },
            Instr::VBin {
                op: VBinOp::Add,
                vd: v(6),
                va: v(6),
                vb: v(12),
            },
            Instr::VUn {
                op: crate::isa::VUnOp::SarImm(1),
                vd: v(1),
                va: v(6),
            },
        ]);
    }
    pe.run(&program)?;
    Ok((pe.vreg(v(0)).to_vec(), pe.vreg(v(1)).to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, scale: i16, offset: i16) -> Vec<i16> {
        (0..n)
            .map(|i| (i as i16).wrapping_mul(scale).wrapping_add(offset))
            .collect()
    }

    #[test]
    fn vector_add_matches_golden() {
        let mut pe = ProcessingElement::new();
        let a = ramp(128, 3, -100);
        let b = ramp(128, -2, 7);
        let got = vector_add(&mut pe, &a, &b).unwrap();
        assert_eq!(got, golden::vector_add(&a, &b));
    }

    #[test]
    fn dot_product_matches_golden() {
        let mut pe = ProcessingElement::new();
        let a = ramp(128, 1, -64);
        let b = ramp(128, 2, 5);
        // Per-lane products fit 16 bits after >>6; tree sum uses shift 0.
        let got = dot_product(&mut pe, &a, &b, 6, 0).unwrap();
        // Golden: same two-stage rounding as the hardware path.
        let per_lane: Vec<i32> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (i32::from(x) * i32::from(y)) >> 6)
            .collect();
        let want = per_lane.iter().sum::<i32>().clamp(-32768, 32767) as i16;
        assert_eq!(got, want);
    }

    #[test]
    fn matvec_matches_golden() {
        let mut pe = ProcessingElement::new();
        let matrix: Vec<Vec<i16>> = (0..8)
            .map(|r| {
                (0..128)
                    .map(|c| ((r * 37 + c * 5) % 61) as i16 - 30)
                    .collect()
            })
            .collect();
        let x: Vec<i16> = (0..128).map(|c| (c % 17) as i16 - 8).collect();
        let got = matvec(&mut pe, &matrix, &x, 4, 3).unwrap();
        let want = golden_matvec(&matrix, &x, 4, 3);
        assert_eq!(got, want);
        assert_eq!(got.len(), 8);
    }

    #[test]
    fn fir_matches_golden() {
        let mut pe = ProcessingElement::new();
        let signal: Vec<i16> = (0..384).map(|i| ((i * 37) % 199) as i16 - 99).collect();
        let coeffs = [3, -1, 4, 1, -5];
        let got = fir(&mut pe, &signal, &coeffs, 2).unwrap();
        let want = golden::fir(&signal, &coeffs, 2);
        // Kernel produces len-128 outputs; golden covers len-taps+1.
        assert_eq!(got.len(), 256);
        assert_eq!(got[..], want[..256]);
    }

    #[test]
    fn conv2d_matches_golden() {
        let mut pe = ProcessingElement::new();
        let image: Vec<Vec<i16>> = (0..6)
            .map(|r| {
                (0..128)
                    .map(|c| ((r * 131 + c * 17) % 255) as i16 - 127)
                    .collect()
            })
            .collect();
        let kernel = [[1, 2, 1], [2, 4, 2], [1, 2, 1]];
        let got = conv2d_3x3(&mut pe, &image, &kernel, 4).unwrap();
        let want = golden::conv2d_3x3(&image, &kernel, 4);
        assert_eq!(got, want);
    }

    #[test]
    fn bayer_green_matches_golden() {
        let mut pe = ProcessingElement::new();
        let raw: Vec<i16> = (0..128).map(|i| ((i * 83 + 11) % 1021) as i16).collect();
        let got = bayer_green_interp(&mut pe, &raw).unwrap();
        assert_eq!(got, golden_bayer_green(&raw));
        // Green lanes pass through untouched.
        assert_eq!(got[13], raw[13]);
        // Red lanes are interpolated.
        assert_eq!(
            got[12],
            ((i32::from(raw[11]) + i32::from(raw[13])) >> 1) as i16
        );
        // Exercised the crossbar twice.
        assert_eq!(pe.stats().shuffles, 2);
    }

    #[test]
    fn threshold_matches_scalar_semantics() {
        let mut pe = ProcessingElement::new();
        let x: Vec<i16> = (0..128).map(|i| (i as i16 - 64) * 100).collect();
        let got = threshold(&mut pe, &x, 0, 1000, -1000).unwrap();
        for (l, &g) in got.iter().enumerate() {
            assert_eq!(g, if x[l] > 0 { 1000 } else { -1000 }, "lane {l}");
        }
    }

    #[test]
    fn fft_matches_dft_within_tolerance() {
        let mut pe = ProcessingElement::new();
        // A two-tone signal at bins 3 and 17, quarter scale.
        let re: Vec<i16> = (0..128)
            .map(|i| {
                let t = f64::from(i) / 128.0;
                q15(0.20 * (2.0 * std::f64::consts::PI * 3.0 * t).cos()
                    + 0.10 * (2.0 * std::f64::consts::PI * 17.0 * t).sin())
            })
            .collect();
        let im = vec![0i16; 128];
        let (got_re, got_im) = fft128(&mut pe, &re, &im).unwrap();
        let (want_re, want_im) = golden::dft_scaled(&re, &im);
        for k in 0..128 {
            let err_re = (f64::from(got_re[k]) - want_re[k]).abs();
            let err_im = (f64::from(got_im[k]) - want_im[k]).abs();
            assert!(err_re < 16.0, "bin {k}: re {} vs {}", got_re[k], want_re[k]);
            assert!(err_im < 16.0, "bin {k}: im {} vs {}", got_im[k], want_im[k]);
        }
        // The tone bins dominate.
        let mag = |k: usize| f64::from(got_re[k]).hypot(f64::from(got_im[k]));
        assert!(mag(3) > 10.0 * mag(5));
        assert!(mag(17) > 10.0 * mag(5));
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut pe = ProcessingElement::new();
        let mut re = vec![0i16; 128];
        re[0] = 12800;
        let im = vec![0i16; 128];
        let (got_re, got_im) = fft128(&mut pe, &re, &im).unwrap();
        // DFT of delta: constant 12800/128 = 100 in every bin.
        for k in 0..128 {
            assert!(
                (i32::from(got_re[k]) - 100).abs() <= 3,
                "bin {k}: {}",
                got_re[k]
            );
            assert!(i32::from(got_im[k]).abs() <= 3, "bin {k}: {}", got_im[k]);
        }
    }

    #[test]
    fn kernels_account_cycles_and_energy() {
        let mut pe = ProcessingElement::new();
        let a = ramp(128, 1, 0);
        let b = ramp(128, 1, 1);
        let _ = vector_add(&mut pe, &a, &b).unwrap();
        let stats = *pe.stats();
        assert!(stats.cycles >= 4);
        assert!(stats.fu_energy_pj > 0.0);
        assert!(stats.mem_energy_pj > 0.0);
    }

    #[test]
    #[should_panic(expected = "multiple of 128")]
    fn fir_rejects_ragged_signal() {
        let mut pe = ProcessingElement::new();
        let _ = fir(&mut pe, &[0; 200], &[1], 0);
    }
}
