//! The Diet SODA processing element: state, execution, cycle and energy
//! accounting, fault handling.

use ntv_device::TechModel;
use ntv_mc::StreamRng;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::fault::{ErrorPolicy, FaultModel};
use crate::isa::{Instr, VReg};
use crate::memory::{AccessOutOfRange, ScalarMemory, SimdMemory};
use crate::xram::{LaneMap, NotEnoughLanes, ShuffleConfig, XramCrossbar};
use crate::{SCALAR_REGS, SIMD_REGS, SIMD_WIDTH};

/// Extra cycles a SIMD-wide flush-and-replay costs on top of re-issuing
/// the instruction (pipeline refill; paper §4: recovery in one lane stalls
/// the whole array).
pub const REPLAY_FLUSH_CYCLES: u64 = 4;

/// Per-event energy constants (picojoules).
///
/// The defaults follow the Diet SODA power story: the SIMD datapath runs
/// near threshold (cheap per-op energy), while the memory system and the
/// XRAM shuffle network stay at full voltage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyConfig {
    /// Energy per lane per SIMD FU operation (NTV domain).
    pub fu_lane_pj: f64,
    /// Energy per 32-wide memory-bank row access (FV domain).
    pub mem_row_pj: f64,
    /// Energy per 128-wide crossbar traversal (FV domain).
    pub ssn_pj: f64,
    /// Energy per scalar operation (FV domain).
    pub scalar_pj: f64,
}

impl EnergyConfig {
    /// Defaults corresponding to near-threshold SIMD operation.
    #[must_use]
    pub fn ntv_default() -> Self {
        Self {
            fu_lane_pj: 0.05,
            mem_row_pj: 4.0,
            ssn_pj: 6.0,
            scalar_pj: 0.5,
        }
    }

    /// Scale the NTV-domain FU energy for a supply voltage, quadratically
    /// against the node's nominal voltage (CV² switching energy).
    ///
    /// # Example
    ///
    /// ```
    /// use ntv_device::{TechModel, TechNode};
    /// use ntv_soda::pe::EnergyConfig;
    /// use ntv_units::Volts;
    /// let tech = TechModel::new(TechNode::Gp90);
    /// let ntv = EnergyConfig::for_tech(&tech, Volts(0.5));
    /// let fv = EnergyConfig::for_tech(&tech, Volts(1.0));
    /// assert!((fv.fu_lane_pj / ntv.fu_lane_pj - 4.0).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn for_tech(tech: &TechModel, vdd: Volts) -> Self {
        let base = Self::ntv_default();
        let nominal = tech.nominal_vdd();
        // ntv_default is calibrated at half the nominal supply.
        let ratio = (vdd / (0.5 * nominal)).powi(2);
        Self {
            fu_lane_pj: base.fu_lane_pj * ratio,
            ..base
        }
    }
}

impl Default for EnergyConfig {
    fn default() -> Self {
        Self::ntv_default()
    }
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PeStats {
    /// Total cycles (including replay penalties).
    pub cycles: u64,
    /// Instructions executed (excluding replays).
    pub instructions: u64,
    /// SIMD FU operations executed (including replays).
    pub fu_ops: u64,
    /// Whole-array replays triggered by the stall-retry policy.
    pub replays: u64,
    /// Lane-level timing errors injected.
    pub lane_errors: u64,
    /// Lane results actually corrupted (errors that reached state).
    pub corrupted_lanes: u64,
    /// 32-wide memory-bank row accesses.
    pub mem_rows: u64,
    /// Crossbar traversals.
    pub shuffles: u64,
    /// NTV-domain (FU) energy, pJ.
    pub fu_energy_pj: f64,
    /// FV-domain memory energy, pJ.
    pub mem_energy_pj: f64,
    /// FV-domain crossbar energy, pJ.
    pub ssn_energy_pj: f64,
    /// FV-domain scalar energy, pJ.
    pub scalar_energy_pj: f64,
}

impl PeStats {
    /// Total energy across domains, pJ.
    #[must_use]
    pub fn total_energy_pj(&self) -> f64 {
        self.fu_energy_pj + self.mem_energy_pj + self.ssn_energy_pj + self.scalar_energy_pj
    }
}

/// Errors surfaced by [`ProcessingElement::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum PeError {
    /// A memory access left the address space.
    Memory(AccessOutOfRange),
    /// A shuffle referenced an unstored configuration slot.
    BadShuffleSlot {
        /// The missing slot.
        slot: usize,
    },
    /// An unaligned load's offset was not in `0..128` or overran memory.
    BadUnalignedLoad {
        /// First staged row.
        first_row: usize,
        /// Element offset.
        offset: usize,
    },
    /// Spare repair failed: more faulty lanes than spares.
    Unrepairable(NotEnoughLanes),
}

impl std::fmt::Display for PeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeError::Memory(e) => write!(f, "memory access failed: {e}"),
            PeError::BadShuffleSlot { slot } => {
                write!(f, "no shuffle configuration in slot {slot}")
            }
            PeError::BadUnalignedLoad { first_row, offset } => {
                write!(
                    f,
                    "invalid unaligned load (row {first_row}, offset {offset})"
                )
            }
            PeError::Unrepairable(e) => write!(f, "spare repair failed: {e}"),
        }
    }
}

impl std::error::Error for PeError {}

impl From<AccessOutOfRange> for PeError {
    fn from(e: AccessOutOfRange) -> Self {
        PeError::Memory(e)
    }
}

/// The Diet SODA processing element.
///
/// # Example
///
/// ```
/// use ntv_soda::isa::{Instr, VBinOp, VReg};
/// use ntv_soda::pe::ProcessingElement;
///
/// let mut pe = ProcessingElement::new();
/// let (v0, v1, v2) = (VReg::new(0), VReg::new(1), VReg::new(2));
/// pe.set_vreg(v0, &[3; 128]);
/// pe.set_vreg(v1, &[4; 128]);
/// pe.execute(&Instr::VBin { op: VBinOp::Add, vd: v2, va: v0, vb: v1 })?;
/// assert_eq!(pe.vreg(v2)[0], 7);
/// # Ok::<(), ntv_soda::pe::PeError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProcessingElement {
    vregs: Vec<[i16; SIMD_WIDTH]>,
    accs: [i32; SIMD_WIDTH],
    sregs: [i16; SCALAR_REGS],
    mem: SimdMemory,
    smem: ScalarMemory,
    xram: XramCrossbar,
    fault: FaultModel,
    policy: ErrorPolicy,
    fault_rng: StreamRng,
    energy: EnergyConfig,
    stats: PeStats,
}

impl Default for ProcessingElement {
    fn default() -> Self {
        Self::new()
    }
}

impl ProcessingElement {
    /// A fault-free PE with default energy constants.
    #[must_use]
    pub fn new() -> Self {
        Self {
            vregs: vec![[0; SIMD_WIDTH]; SIMD_REGS],
            accs: [0; SIMD_WIDTH],
            sregs: [0; SCALAR_REGS],
            mem: SimdMemory::new(),
            smem: ScalarMemory::new(),
            xram: XramCrossbar::new(SIMD_WIDTH),
            fault: FaultModel::none(SIMD_WIDTH),
            policy: ErrorPolicy::default(),
            fault_rng: StreamRng::from_seed(0),
            energy: EnergyConfig::default(),
            stats: PeStats::default(),
        }
    }

    /// Replace the energy constants.
    pub fn set_energy_config(&mut self, energy: EnergyConfig) {
        self.energy = energy;
    }

    /// Set the error-handling policy.
    pub fn set_error_policy(&mut self, policy: ErrorPolicy) {
        self.policy = policy;
    }

    /// The active error-handling policy.
    #[must_use]
    pub fn error_policy(&self) -> ErrorPolicy {
        self.policy
    }

    /// Install a fault model (and the RNG stream that drives intermittent
    /// errors).
    ///
    /// # Panics
    ///
    /// Panics if the model covers fewer physical lanes than the SIMD width.
    pub fn set_fault_model(&mut self, fault: FaultModel, rng: StreamRng) {
        assert!(
            fault.physical_lanes() >= SIMD_WIDTH,
            "fault model must cover at least {SIMD_WIDTH} physical lanes"
        );
        self.fault = fault;
        self.fault_rng = rng;
    }

    /// Test-time repair: mark lanes with error probability above
    /// `threshold` faulty and rebuild the crossbar lane map to bypass them
    /// (the paper's global sparing through XRAM, Appendix D).
    ///
    /// Returns the number of spare lanes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`PeError::Unrepairable`] if fewer than 128 healthy lanes
    /// remain.
    pub fn repair(&mut self, threshold: f64) -> Result<usize, PeError> {
        let faulty = self.fault.faulty_lanes(threshold);
        let map = LaneMap::with_faulty(SIMD_WIDTH, self.fault.physical_lanes(), &faulty)
            .map_err(PeError::Unrepairable)?;
        let spares_used = faulty.len();
        self.xram.set_lane_map(map);
        Ok(spares_used)
    }

    /// Store a crossbar shuffle configuration, returning its slot.
    pub fn store_shuffle(&mut self, config: ShuffleConfig) -> usize {
        self.xram.store(config)
    }

    /// Read a vector register.
    #[must_use]
    pub fn vreg(&self, v: VReg) -> &[i16; SIMD_WIDTH] {
        &self.vregs[v.index()]
    }

    /// Write a vector register (host-side staging).
    ///
    /// # Panics
    ///
    /// Panics if `data` is not 128 elements.
    pub fn set_vreg(&mut self, v: VReg, data: &[i16]) {
        assert_eq!(data.len(), SIMD_WIDTH, "vector registers are 128 wide");
        self.vregs[v.index()].copy_from_slice(data);
    }

    /// Read a scalar register.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn sreg(&self, index: usize) -> i16 {
        // ntv:allow(panic-path): documented panic (see `# Panics`); the register file is machine-fixed
        self.sregs[index]
    }

    /// The SIMD memory (host staging).
    #[must_use]
    pub fn mem(&self) -> &SimdMemory {
        &self.mem
    }

    /// Mutable SIMD memory (host staging).
    pub fn mem_mut(&mut self) -> &mut SimdMemory {
        &mut self.mem
    }

    /// The crossbar (to inspect stored configurations and the lane map).
    #[must_use]
    pub fn xram(&self) -> &XramCrossbar {
        &self.xram
    }

    /// Execution statistics so far.
    #[must_use]
    pub fn stats(&self) -> &PeStats {
        &self.stats
    }

    /// Zero the statistics (state and configuration are kept).
    pub fn reset_stats(&mut self) {
        self.stats = PeStats::default();
    }

    /// Execute one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`PeError`] on invalid memory accesses or shuffle slots;
    /// architectural state is unchanged on error.
    pub fn execute(&mut self, instr: &Instr) -> Result<(), PeError> {
        self.stats.instructions += 1;
        self.stats.cycles += instr.cycles();

        if instr.uses_simd_fus() {
            self.execute_fu(instr);
            return Ok(());
        }

        match *instr {
            Instr::VLoad { vd, rows } => {
                let data = self.mem.read_vector(rows)?;
                self.vregs[vd.index()].copy_from_slice(&data);
                self.account_mem_rows(4);
            }
            Instr::VLoadUnaligned {
                vd,
                first_row,
                offset,
            } => {
                if offset >= SIMD_WIDTH {
                    return Err(PeError::BadUnalignedLoad { first_row, offset });
                }
                let lo = self.mem.read_vector([first_row; 4])?;
                let hi = self
                    .mem
                    .read_vector([first_row + 1; 4])
                    .map_err(|_| PeError::BadUnalignedLoad { first_row, offset })?;
                let mut window = lo;
                window.extend_from_slice(&hi);
                self.vregs[vd.index()].copy_from_slice(&window[offset..offset + SIMD_WIDTH]);
                self.account_mem_rows(8);
            }
            Instr::VStore { vs, rows } => {
                let data = self.vregs[vs.index()];
                self.mem.write_vector(rows, &data)?;
                self.account_mem_rows(4);
            }
            Instr::Shuffle { vd, va, slot } => {
                if self.xram.config(slot).is_none() {
                    return Err(PeError::BadShuffleSlot { slot });
                }
                let out = self.xram.shuffle(slot, &self.vregs[va.index()]);
                self.vregs[vd.index()].copy_from_slice(&out);
                self.stats.shuffles += 1;
                self.stats.ssn_energy_pj += self.energy.ssn_pj;
            }
            Instr::Reduce { sd, va, shift } => {
                let sum: i32 = self.vregs[va.index()].iter().map(|&x| i32::from(x)).sum();
                let shifted = sum >> shift;
                self.sregs[sd.index()] =
                    shifted.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16;
                // The adder tree is part of the SIMD pipeline but runs wide
                // margins; account it as one FU-class op without fault
                // exposure (its 7 levels are far off the critical path count).
                self.stats.fu_energy_pj += self.energy.fu_lane_pj * SIMD_WIDTH as f64;
            }
            Instr::BroadcastImm { vd, value } => {
                self.vregs[vd.index()] = [value; SIMD_WIDTH];
            }
            Instr::BroadcastS { vd, ss } => {
                self.vregs[vd.index()] = [self.sregs[ss.index()]; SIMD_WIDTH];
            }
            Instr::SLoadImm { sd, value } => {
                self.sregs[sd.index()] = value;
                self.account_scalar();
            }
            Instr::SAdd { sd, sa, sb } => {
                self.sregs[sd.index()] =
                    self.sregs[sa.index()].saturating_add(self.sregs[sb.index()]);
                self.account_scalar();
            }
            Instr::SMul { sd, sa, sb } => {
                self.sregs[sd.index()] =
                    self.sregs[sa.index()].wrapping_mul(self.sregs[sb.index()]);
                self.account_scalar();
            }
            Instr::SLoad { sd, addr } => {
                self.sregs[sd.index()] = self.smem.read(addr)?;
                self.account_scalar();
            }
            Instr::SStore { ss, addr } => {
                self.smem.write(addr, self.sregs[ss.index()])?;
                self.account_scalar();
            }
            Instr::VMacClear => {
                self.accs = [0; SIMD_WIDTH];
            }
            Instr::VBin { .. }
            | Instr::VUn { .. }
            | Instr::VSel { .. }
            | Instr::VMac { .. }
            // ntv:allow(panic-path): execute() routes every FU instruction to apply_fu first
            | Instr::VMacRead { .. } => unreachable!("FU instructions handled above"),
        }
        Ok(())
    }

    /// Run a whole program.
    ///
    /// # Errors
    ///
    /// Stops at, and returns, the first failing instruction's error.
    pub fn run(&mut self, program: &[Instr]) -> Result<(), PeError> {
        for instr in program {
            self.execute(instr)?;
        }
        Ok(())
    }

    fn account_mem_rows(&mut self, rows: u64) {
        self.stats.mem_rows += rows;
        self.stats.mem_energy_pj += self.energy.mem_row_pj * rows as f64;
    }

    fn account_scalar(&mut self) {
        self.stats.scalar_energy_pj += self.energy.scalar_pj;
    }

    fn account_fu_op(&mut self) {
        self.stats.fu_ops += 1;
        self.stats.fu_energy_pj += self.energy.fu_lane_pj * SIMD_WIDTH as f64;
    }

    /// Execute a SIMD FU instruction with fault injection.
    fn execute_fu(&mut self, instr: &Instr) {
        self.account_fu_op();
        let mut errors = self.sample_logical_errors();
        self.stats.lane_errors += errors.iter().filter(|&&e| e).count() as u64;

        if self.policy == ErrorPolicy::StallRetry && errors.iter().any(|&e| e) {
            // Whole-array flush and re-execute at relaxed timing: the retry
            // succeeds, at the cost of cycles and a second pass of energy.
            self.stats.replays += 1;
            self.stats.cycles += instr.cycles() + REPLAY_FLUSH_CYCLES;
            self.account_fu_op();
            errors.iter_mut().for_each(|e| *e = false);
        }

        self.apply_fu(instr, &errors);
    }

    /// Sample which *logical* lanes err this operation, through the active
    /// lane map.
    fn sample_logical_errors(&mut self) -> Vec<bool> {
        let mut errors = vec![false; SIMD_WIDTH];
        if self.fault.is_fault_free() {
            return errors;
        }
        let physical_errors = self.fault.sample_errors(&mut self.fault_rng);
        if physical_errors.is_empty() {
            return errors;
        }
        let map = self.xram.lane_map();
        for (l, err) in errors.iter_mut().enumerate() {
            if physical_errors.contains(&map.physical(l)) {
                *err = true;
            }
        }
        errors
    }

    /// Apply an FU instruction; erring lanes keep stale destination state.
    fn apply_fu(&mut self, instr: &Instr, errors: &[bool]) {
        let corrupted = errors.iter().filter(|&&e| e).count() as u64;
        self.stats.corrupted_lanes += corrupted;
        match *instr {
            Instr::VBin { op, vd, va, vb } => {
                let a = self.vregs[va.index()];
                let b = self.vregs[vb.index()];
                let dst = &mut self.vregs[vd.index()];
                for l in 0..SIMD_WIDTH {
                    if !errors[l] {
                        dst[l] = op.apply(a[l], b[l]);
                    }
                }
            }
            Instr::VUn { op, vd, va } => {
                let a = self.vregs[va.index()];
                let dst = &mut self.vregs[vd.index()];
                for l in 0..SIMD_WIDTH {
                    if !errors[l] {
                        dst[l] = op.apply(a[l]);
                    }
                }
            }
            Instr::VSel { vd, mask, va, vb } => {
                let m = self.vregs[mask.index()];
                let a = self.vregs[va.index()];
                let b = self.vregs[vb.index()];
                let dst = &mut self.vregs[vd.index()];
                for l in 0..SIMD_WIDTH {
                    if !errors[l] {
                        dst[l] = if m[l] != 0 { a[l] } else { b[l] };
                    }
                }
            }
            Instr::VMac { va, vb } => {
                let a = self.vregs[va.index()];
                let b = self.vregs[vb.index()];
                for l in 0..SIMD_WIDTH {
                    if !errors[l] {
                        self.accs[l] += i32::from(a[l]) * i32::from(b[l]);
                    }
                }
            }
            Instr::VMacRead { vd, shift } => {
                let dst = &mut self.vregs[vd.index()];
                for l in 0..SIMD_WIDTH {
                    if !errors[l] {
                        let v = self.accs[l] >> shift;
                        dst[l] = v.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16;
                    }
                }
            }
            // ntv:allow(panic-path): apply_fu's only caller filters to FU instructions
            _ => unreachable!("only FU instructions reach apply_fu"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{VBinOp, VUnOp};
    use crate::SCALAR_WORDS;

    fn v(i: u8) -> VReg {
        VReg::new(i)
    }

    fn s(i: u8) -> crate::isa::SReg {
        crate::isa::SReg::new(i)
    }

    #[test]
    fn vector_alu_and_stats() {
        let mut pe = ProcessingElement::new();
        pe.set_vreg(v(0), &[5; 128]);
        pe.set_vreg(v(1), &[3; 128]);
        pe.execute(&Instr::VBin {
            op: VBinOp::Sub,
            vd: v(2),
            va: v(0),
            vb: v(1),
        })
        .unwrap();
        assert_eq!(pe.vreg(v(2)), &[2; 128]);
        pe.execute(&Instr::VUn {
            op: VUnOp::Neg,
            vd: v(3),
            va: v(2),
        })
        .unwrap();
        assert_eq!(pe.vreg(v(3)), &[-2; 128]);
        assert_eq!(pe.stats().instructions, 2);
        assert_eq!(pe.stats().fu_ops, 2);
        assert!(pe.stats().fu_energy_pj > 0.0);
    }

    #[test]
    fn mac_pipeline() {
        let mut pe = ProcessingElement::new();
        pe.set_vreg(v(0), &[100; 128]);
        pe.set_vreg(v(1), &[200; 128]);
        pe.execute(&Instr::VMacClear).unwrap();
        for _ in 0..3 {
            pe.execute(&Instr::VMac { va: v(0), vb: v(1) }).unwrap();
        }
        pe.execute(&Instr::VMacRead { vd: v(2), shift: 2 }).unwrap();
        assert_eq!(pe.vreg(v(2)), &[((3 * 100 * 200) >> 2) as i16; 128]);
    }

    #[test]
    fn mac_read_saturates() {
        let mut pe = ProcessingElement::new();
        pe.set_vreg(v(0), &[i16::MAX; 128]);
        pe.set_vreg(v(1), &[i16::MAX; 128]);
        pe.execute(&Instr::VMacClear).unwrap();
        pe.execute(&Instr::VMac { va: v(0), vb: v(1) }).unwrap();
        pe.execute(&Instr::VMacRead { vd: v(2), shift: 0 }).unwrap();
        assert_eq!(pe.vreg(v(2)), &[i16::MAX; 128]);
    }

    #[test]
    fn load_store_round_trip() {
        let mut pe = ProcessingElement::new();
        let data: Vec<i16> = (0..128).collect();
        pe.mem_mut().stage(10, &data).unwrap();
        pe.execute(&Instr::VLoad {
            vd: v(4),
            rows: [10; 4],
        })
        .unwrap();
        assert_eq!(pe.vreg(v(4)).to_vec(), data);
        pe.execute(&Instr::VStore {
            vs: v(4),
            rows: [20; 4],
        })
        .unwrap();
        assert_eq!(pe.mem().unstage(20, 1).unwrap(), data);
        assert_eq!(pe.stats().mem_rows, 8);
    }

    #[test]
    fn unaligned_load_extracts_window() {
        let mut pe = ProcessingElement::new();
        let data: Vec<i16> = (0..256).collect();
        pe.mem_mut().stage(0, &data).unwrap();
        pe.execute(&Instr::VLoadUnaligned {
            vd: v(0),
            first_row: 0,
            offset: 5,
        })
        .unwrap();
        let got = pe.vreg(v(0));
        assert_eq!(got[0], 5);
        assert_eq!(got[127], 132);
        assert_eq!(pe.stats().cycles, 2);
    }

    #[test]
    fn unaligned_load_rejects_bad_offset() {
        let mut pe = ProcessingElement::new();
        let err = pe
            .execute(&Instr::VLoadUnaligned {
                vd: v(0),
                first_row: 0,
                offset: 128,
            })
            .unwrap_err();
        assert!(matches!(err, PeError::BadUnalignedLoad { .. }));
    }

    #[test]
    fn shuffle_through_stored_config() {
        let mut pe = ProcessingElement::new();
        let slot = pe.store_shuffle(ShuffleConfig::rotate(SIMD_WIDTH, 1));
        let data: Vec<i16> = (0..128).collect();
        pe.set_vreg(v(0), &data);
        pe.execute(&Instr::Shuffle {
            vd: v(1),
            va: v(0),
            slot,
        })
        .unwrap();
        assert_eq!(pe.vreg(v(1))[0], 1);
        assert_eq!(pe.vreg(v(1))[127], 0);
        assert_eq!(pe.stats().shuffles, 1);
        let err = pe
            .execute(&Instr::Shuffle {
                vd: v(1),
                va: v(0),
                slot: 9,
            })
            .unwrap_err();
        assert!(err.to_string().contains("slot 9"));
    }

    #[test]
    fn vsel_predication() {
        let mut pe = ProcessingElement::new();
        let mask: Vec<i16> = (0..128).map(|i| i16::from(i % 3 == 0)).collect();
        pe.set_vreg(v(0), &mask);
        pe.set_vreg(v(1), &[7; 128]);
        pe.set_vreg(v(2), &[-9; 128]);
        pe.execute(&Instr::VSel {
            vd: v(3),
            mask: v(0),
            va: v(1),
            vb: v(2),
        })
        .unwrap();
        for (l, &got) in pe.vreg(v(3)).iter().enumerate() {
            assert_eq!(got, if l % 3 == 0 { 7 } else { -9 });
        }
        // VSel runs on the FUs and is fault-exposed.
        assert_eq!(pe.stats().fu_ops, 1);
    }

    #[test]
    fn reduce_sums_via_adder_tree() {
        let mut pe = ProcessingElement::new();
        pe.set_vreg(v(0), &[3; 128]);
        pe.execute(&Instr::Reduce {
            sd: s(1),
            va: v(0),
            shift: 0,
        })
        .unwrap();
        assert_eq!(pe.sreg(1), 384);
        // Saturation path.
        pe.set_vreg(v(0), &[i16::MAX; 128]);
        pe.execute(&Instr::Reduce {
            sd: s(2),
            va: v(0),
            shift: 0,
        })
        .unwrap();
        assert_eq!(pe.sreg(2), i16::MAX);
    }

    #[test]
    fn scalar_pipeline() {
        let mut pe = ProcessingElement::new();
        pe.run(&[
            Instr::SLoadImm { sd: s(0), value: 7 },
            Instr::SLoadImm { sd: s(1), value: 6 },
            Instr::SMul {
                sd: s(2),
                sa: s(0),
                sb: s(1),
            },
            Instr::SStore { ss: s(2), addr: 99 },
            Instr::SLoad { sd: s(3), addr: 99 },
            Instr::SAdd {
                sd: s(4),
                sa: s(3),
                sb: s(0),
            },
        ])
        .unwrap();
        assert_eq!(pe.sreg(4), 49);
        assert!(pe
            .execute(&Instr::SLoad {
                sd: s(0),
                addr: SCALAR_WORDS
            })
            .is_err());
    }

    #[test]
    fn broadcast_paths() {
        let mut pe = ProcessingElement::new();
        pe.execute(&Instr::BroadcastImm {
            vd: v(0),
            value: -9,
        })
        .unwrap();
        assert_eq!(pe.vreg(v(0)), &[-9; 128]);
        pe.execute(&Instr::SLoadImm {
            sd: s(0),
            value: 21,
        })
        .unwrap();
        pe.execute(&Instr::BroadcastS { vd: v(1), ss: s(0) })
            .unwrap();
        assert_eq!(pe.vreg(v(1)), &[21; 128]);
    }

    #[test]
    fn corrupt_policy_leaves_stale_lanes() {
        let mut pe = ProcessingElement::new();
        pe.set_error_policy(ErrorPolicy::Corrupt);
        // Physical lane 3 always errs.
        let mut probs = vec![0.0; SIMD_WIDTH];
        probs[3] = 1.0;
        pe.set_fault_model(
            FaultModel::from_probabilities(probs),
            StreamRng::from_seed(1),
        );
        pe.set_vreg(v(0), &[1; 128]);
        pe.set_vreg(v(1), &[1; 128]);
        pe.execute(&Instr::VBin {
            op: VBinOp::Add,
            vd: v(2),
            va: v(0),
            vb: v(1),
        })
        .unwrap();
        let out = pe.vreg(v(2));
        assert_eq!(out[3], 0, "faulty lane keeps stale value");
        assert!(out.iter().enumerate().all(|(l, &x)| l == 3 || x == 2));
        assert_eq!(pe.stats().corrupted_lanes, 1);
        assert_eq!(pe.stats().replays, 0);
    }

    #[test]
    fn stall_retry_recovers_at_a_cost() {
        let mut pe = ProcessingElement::new();
        pe.set_error_policy(ErrorPolicy::StallRetry);
        let mut probs = vec![0.0; SIMD_WIDTH];
        probs[7] = 1.0;
        pe.set_fault_model(
            FaultModel::from_probabilities(probs),
            StreamRng::from_seed(2),
        );
        pe.set_vreg(v(0), &[1; 128]);
        pe.set_vreg(v(1), &[1; 128]);
        pe.execute(&Instr::VBin {
            op: VBinOp::Add,
            vd: v(2),
            va: v(0),
            vb: v(1),
        })
        .unwrap();
        assert_eq!(pe.vreg(v(2)), &[2; 128], "retry produces correct data");
        assert_eq!(pe.stats().replays, 1);
        assert!(pe.stats().cycles >= 1 + 1 + REPLAY_FLUSH_CYCLES);
        assert_eq!(pe.stats().fu_ops, 2, "replay re-spends FU energy");
    }

    #[test]
    fn spare_remap_bypasses_faulty_lane() {
        let mut pe = ProcessingElement::new();
        pe.set_error_policy(ErrorPolicy::SpareRemap);
        // 130 physical lanes (2 spares); lanes 5 and 60 are hard-faulty.
        let mut probs = vec![0.0; SIMD_WIDTH + 2];
        probs[5] = 1.0;
        probs[60] = 1.0;
        pe.set_fault_model(
            FaultModel::from_probabilities(probs),
            StreamRng::from_seed(3),
        );
        let spares_used = pe.repair(0.5).unwrap();
        assert_eq!(spares_used, 2);
        pe.set_vreg(v(0), &[1; 128]);
        pe.set_vreg(v(1), &[1; 128]);
        pe.execute(&Instr::VBin {
            op: VBinOp::Add,
            vd: v(2),
            va: v(0),
            vb: v(1),
        })
        .unwrap();
        assert_eq!(pe.vreg(v(2)), &[2; 128]);
        assert_eq!(pe.stats().lane_errors, 0);
        assert_eq!(pe.stats().replays, 0);
    }

    #[test]
    fn repair_fails_without_enough_spares() {
        let mut pe = ProcessingElement::new();
        let mut probs = vec![0.0; SIMD_WIDTH + 1];
        probs[0] = 1.0;
        probs[1] = 1.0;
        pe.set_fault_model(
            FaultModel::from_probabilities(probs),
            StreamRng::from_seed(4),
        );
        let err = pe.repair(0.5).unwrap_err();
        assert!(matches!(err, PeError::Unrepairable(_)));
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut pe = ProcessingElement::new();
        pe.execute(&Instr::BroadcastImm { vd: v(0), value: 1 })
            .unwrap();
        assert!(pe.stats().instructions > 0);
        pe.reset_stats();
        assert_eq!(pe.stats(), &PeStats::default());
    }
}
