#![warn(missing_docs)]
// Tests assert exact golden values; strict float equality is the point there.
#![cfg_attr(test, allow(clippy::float_cmp))]

//! Experiment harness for the DAC 2012 reproduction.
//!
//! Every table and figure of the paper's evaluation has a module under
//! [`experiments`] that regenerates it and returns structured results; the
//! binaries in `src/bin/` print them in the paper's layout (`cargo run
//! --release -p ntv-bench --bin fig4`, or `--bin repro` for everything),
//! and the Criterion benches in `benches/` time the underlying engines and
//! run the ablation studies.
//!
//! | Paper artifact | Module | Binary |
//! |---|---|---|
//! | Fig 1 (inverter/chain histograms) | [`experiments::fig1`] | `fig1` |
//! | Fig 2 (chain 3σ/μ vs Vdd, 4 nodes) | [`experiments::fig2`] | `fig2` |
//! | Fig 3 (128-wide delay distributions) | [`experiments::fig3`] | `fig3` |
//! | Fig 4 (performance drop) | [`experiments::fig4`] | `fig4` |
//! | Fig 5 (duplicated-system distributions) | [`experiments::fig5`] | `fig5` |
//! | Fig 6 (margining distributions) | [`experiments::fig6`] | `fig6` |
//! | Fig 7 (duplication vs margining power) | [`experiments::fig7`] | `fig7` |
//! | Fig 8 (chip delay vs voltage/spares) | [`experiments::fig8`] | `fig8` |
//! | Fig 9 (energy/delay regions) | [`experiments::fig9`] | `fig9` |
//! | Fig 11 (3σ/μ vs chain length) | [`experiments::fig11`] | `fig11` |
//! | Fig 12 / App D (sparing placement) | [`experiments::placement`] | `placement` |
//! | Table 1 (required spares) | [`experiments::table1`] | `table1` |
//! | Table 2 (voltage margins) | [`experiments::table2`] | `table2` |
//! | Table 3 (combined design choices) | [`experiments::table3`] | `table3` |
//! | Table 4 (frequency margining) | [`experiments::table4`] | `table4` |

pub mod experiments;
pub mod table;

/// Default Monte-Carlo sample count for architecture-level experiments
/// (the paper uses 10 000).
pub const ARCH_SAMPLES: usize = 10_000;

/// Default sample count for gate-level circuit experiments (the paper
/// uses 1 000).
pub const CIRCUIT_SAMPLES: usize = 1_000;

/// Default seed for all experiment binaries.
pub const DEFAULT_SEED: u64 = 2012;
