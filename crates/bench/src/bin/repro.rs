//! Run every experiment and print the full paper-vs-measured report —
//! the data behind EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p ntv-bench --bin repro [-- OPTIONS]
//! ```
//!
//! Options:
//!
//! * `--quick` — reduced sample counts (useful in CI);
//! * `--threads N` — worker threads (default: all hardware threads;
//!   results are bit-identical for any value);
//! * `--samples-arch N` — architecture-level sample count (default 10 000);
//! * `--samples-circuit N` — circuit-level sample count (default 1 000).

use std::process::ExitCode;
use std::time::Instant;

use ntv_bench::experiments::{
    fig1, fig11, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, placement, table1, table2, table3,
    table4,
};
use ntv_bench::{ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};
use ntv_core::Executor;
use ntv_device::TechNode;

struct Options {
    arch: usize,
    circuit: usize,
    threads: usize,
}

fn usage(bad: &str) -> ExitCode {
    eprintln!(
        "unrecognised argument `{bad}`\n\
         usage: repro [--quick] [--threads N] [--samples-arch N] [--samples-circuit N]"
    );
    ExitCode::FAILURE
}

fn parse_options() -> Result<Options, ExitCode> {
    let mut quick = false;
    let mut threads = 0usize;
    let mut arch: Option<usize> = None;
    let mut circuit: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut number = |name: &str| -> Result<usize, ExitCode> {
            match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => Ok(n),
                _ => {
                    eprintln!("{name} expects a positive integer");
                    Err(ExitCode::FAILURE)
                }
            }
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--threads" => threads = number("--threads")?,
            "--samples-arch" => arch = Some(number("--samples-arch")?),
            "--samples-circuit" => circuit = Some(number("--samples-circuit")?),
            other => return Err(usage(other)),
        }
    }

    let (arch_default, circuit_default) = if quick {
        (1_000, 300)
    } else {
        (ARCH_SAMPLES, CIRCUIT_SAMPLES)
    };
    Ok(Options {
        arch: arch.unwrap_or(arch_default),
        circuit: circuit.unwrap_or(circuit_default),
        threads,
    })
}

fn main() -> ExitCode {
    let opts = match parse_options() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let (arch, circuit) = (opts.arch, opts.circuit);
    let exec = Executor::new(opts.threads);
    let seed = DEFAULT_SEED;
    let t0 = Instant::now();

    let section = |name: &str| {
        println!("\n{}", "=".repeat(72));
        println!("{name}  [t = {:.1}s]", t0.elapsed().as_secs_f64());
        println!("{}", "=".repeat(72));
    };

    section("Fig 1 — circuit-level delay variation (90nm)");
    println!("{}", fig1::run_with(circuit, seed, exec));

    section("Fig 2 — chain-of-50 variation vs Vdd (4 nodes)");
    println!("{}", fig2::run_with(circuit, seed, exec));

    section("Fig 3 — 128-wide delay distributions (90nm)");
    println!("{}", fig3::run_with(arch, seed, exec));

    section("Fig 4 — performance drop (4 nodes)");
    println!("{}", fig4::run_with(arch, seed, exec));

    section("Fig 5 — duplicated systems @0.55V (90nm)");
    println!("{}", fig5::run_with(arch, seed, exec));

    section("Fig 6 — voltage margining distributions (45nm @600mV)");
    println!("{}", fig6::run_with(arch, seed, exec));

    section("Fig 7 — duplication vs margining power (4 nodes)");
    println!("{}", fig7::run_with(arch, seed, exec));

    section("Fig 8 — chip delay vs margin and spares (45nm @600mV)");
    println!("{}", fig8::run_with(arch, seed, exec));

    section("Fig 9 — energy/delay regions");
    for node in TechNode::ALL {
        println!("{}", fig9::run_for(node));
    }

    section("Fig 11 — variation vs chain length @0.55V");
    println!("{}", fig11::run_with(circuit, seed, exec));

    section("Table 1 — structural duplication");
    println!("{}", table1::run_with(arch, seed, exec));

    section("Table 2 — voltage margining");
    println!("{}", table2::run_with(arch, seed, exec));

    section("Table 3 — combined design choices (45nm @600mV)");
    println!("{}", table3::run_with(arch, seed, exec));

    section("Table 4 — frequency margining");
    println!("{}", table4::run_with(arch, seed, exec));

    section("Appendix D — spare placement & XRAM bypass");
    println!("{}", placement::run(seed));

    println!(
        "\nall experiments regenerated in {:.1}s (samples: arch {arch}, circuit {circuit}, \
         seed {seed}, threads {})",
        t0.elapsed().as_secs_f64(),
        exec.threads()
    );
    ExitCode::SUCCESS
}
