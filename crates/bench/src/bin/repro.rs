//! Run every experiment and print the full paper-vs-measured report —
//! the data behind EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p ntv-bench --bin repro
//! ```
//!
//! Pass `--quick` to use reduced sample counts (useful in CI).

use std::time::Instant;

use ntv_bench::experiments::{
    fig1, fig11, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, placement, table1, table2, table3,
    table4,
};
use ntv_bench::{ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};
use ntv_device::TechNode;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (arch, circuit) = if quick {
        (1_000, 300)
    } else {
        (ARCH_SAMPLES, CIRCUIT_SAMPLES)
    };
    let seed = DEFAULT_SEED;
    let t0 = Instant::now();

    let section = |name: &str| {
        println!("\n{}", "=".repeat(72));
        println!("{name}  [t = {:.1}s]", t0.elapsed().as_secs_f64());
        println!("{}", "=".repeat(72));
    };

    section("Fig 1 — circuit-level delay variation (90nm)");
    println!("{}", fig1::run(circuit, seed));

    section("Fig 2 — chain-of-50 variation vs Vdd (4 nodes)");
    println!("{}", fig2::run(circuit, seed));

    section("Fig 3 — 128-wide delay distributions (90nm)");
    println!("{}", fig3::run(arch, seed));

    section("Fig 4 — performance drop (4 nodes)");
    println!("{}", fig4::run(arch, seed));

    section("Fig 5 — duplicated systems @0.55V (90nm)");
    println!("{}", fig5::run(arch, seed));

    section("Fig 6 — voltage margining distributions (45nm @600mV)");
    println!("{}", fig6::run(arch, seed));

    section("Fig 7 — duplication vs margining power (4 nodes)");
    println!("{}", fig7::run(arch, seed));

    section("Fig 8 — chip delay vs margin and spares (45nm @600mV)");
    println!("{}", fig8::run(arch, seed));

    section("Fig 9 — energy/delay regions");
    for node in TechNode::ALL {
        println!("{}", fig9::run_for(node));
    }

    section("Fig 11 — variation vs chain length @0.55V");
    println!("{}", fig11::run(circuit, seed));

    section("Table 1 — structural duplication");
    println!("{}", table1::run(arch, seed));

    section("Table 2 — voltage margining");
    println!("{}", table2::run(arch, seed));

    section("Table 3 — combined design choices (45nm @600mV)");
    println!("{}", table3::run(arch, seed));

    section("Table 4 — frequency margining");
    println!("{}", table4::run(arch, seed));

    section("Appendix D — spare placement & XRAM bypass");
    println!("{}", placement::run(seed));

    println!(
        "\nall experiments regenerated in {:.1}s (samples: arch {arch}, circuit {circuit}, seed {seed})",
        t0.elapsed().as_secs_f64()
    );
}
