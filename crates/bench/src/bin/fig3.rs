//! Regenerate the paper's fig3 (see `ntv_bench::experiments::fig3`).

use ntv_bench::{experiments::fig3, ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};

fn main() {
    let samples = match "fig3" {
        "fig1" | "fig2" | "fig11" => CIRCUIT_SAMPLES,
        _ => ARCH_SAMPLES,
    };
    println!("{}", fig3::run(samples, DEFAULT_SEED));
}
