//! Regenerate the paper's table1 (see `ntv_bench::experiments::table1`).

use ntv_bench::{experiments::table1, ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};

fn main() {
    let samples = match "table1" {
        "fig1" | "fig2" | "fig11" => CIRCUIT_SAMPLES,
        _ => ARCH_SAMPLES,
    };
    println!("{}", table1::run(samples, DEFAULT_SEED));
}
