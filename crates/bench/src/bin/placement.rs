//! Regenerate the Appendix D placement study (Fig 12).

use ntv_bench::{experiments::placement, DEFAULT_SEED};

fn main() {
    println!("{}", placement::run(DEFAULT_SEED));
}
