//! Regenerate the paper's fig1 (see `ntv_bench::experiments::fig1`).

use ntv_bench::{experiments::fig1, ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};

fn main() {
    let samples = match "fig1" {
        "fig1" | "fig2" | "fig11" => CIRCUIT_SAMPLES,
        _ => ARCH_SAMPLES,
    };
    println!("{}", fig1::run(samples, DEFAULT_SEED));
}
