//! Regenerate the paper's fig5 (see `ntv_bench::experiments::fig5`).

use ntv_bench::{experiments::fig5, ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};

fn main() {
    let samples = match "fig5" {
        "fig1" | "fig2" | "fig11" => CIRCUIT_SAMPLES,
        _ => ARCH_SAMPLES,
    };
    println!("{}", fig5::run(samples, DEFAULT_SEED));
}
