//! Run the extension experiments (SIMD-width sweep, adaptive body bias,
//! timing-yield curves) that go beyond the paper's printed figures.

use ntv_bench::{experiments::extensions, experiments::policies, DEFAULT_SEED};
use ntv_device::TechNode;
use ntv_units::Volts;

fn main() {
    let samples = 5_000;
    for node in [TechNode::Gp90, TechNode::PtmHp22] {
        println!(
            "{}\n",
            extensions::width_sweep(node, 0.55, samples, DEFAULT_SEED)
        );
    }
    for node in TechNode::ALL {
        println!(
            "{}",
            extensions::abb_comparison(node, 0.6, samples, DEFAULT_SEED)
        );
    }
    println!();
    println!(
        "{}",
        extensions::yield_curves(TechNode::Gp90, 0.55, samples, DEFAULT_SEED)
    );
    println!();
    println!("{}", policies::run(25, DEFAULT_SEED));
    println!();
    for node in [TechNode::Gp90, TechNode::PtmHp22] {
        let tech = ntv_device::TechModel::new(node);
        println!(
            "Extension — variance decomposition, {node} @0.55 V\n{}",
            ntv_core::sensitivity::decompose(
                &tech,
                ntv_core::DatapathConfig::paper_default(),
                Volts(0.55),
                samples,
                DEFAULT_SEED,
                ntv_core::Executor::default(),
            )
        );
    }
}
