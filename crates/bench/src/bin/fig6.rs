//! Regenerate the paper's fig6 (see `ntv_bench::experiments::fig6`).

use ntv_bench::{experiments::fig6, ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};

fn main() {
    let samples = match "fig6" {
        "fig1" | "fig2" | "fig11" => CIRCUIT_SAMPLES,
        _ => ARCH_SAMPLES,
    };
    println!("{}", fig6::run(samples, DEFAULT_SEED));
}
