//! Regenerate the paper's table2 (see `ntv_bench::experiments::table2`).

use ntv_bench::{experiments::table2, ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};

fn main() {
    let samples = match "table2" {
        "fig1" | "fig2" | "fig11" => CIRCUIT_SAMPLES,
        _ => ARCH_SAMPLES,
    };
    println!("{}", table2::run(samples, DEFAULT_SEED));
}
