//! Regenerate the paper's fig11 (see `ntv_bench::experiments::fig11`).

use ntv_bench::{experiments::fig11, ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};

fn main() {
    let samples = match "fig11" {
        "fig1" | "fig2" | "fig11" => CIRCUIT_SAMPLES,
        _ => ARCH_SAMPLES,
    };
    println!("{}", fig11::run(samples, DEFAULT_SEED));
}
