//! Regenerate the paper's table4 (see `ntv_bench::experiments::table4`).

use ntv_bench::{experiments::table4, ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};

fn main() {
    let samples = match "table4" {
        "fig1" | "fig2" | "fig11" => CIRCUIT_SAMPLES,
        _ => ARCH_SAMPLES,
    };
    println!("{}", table4::run(samples, DEFAULT_SEED));
}
