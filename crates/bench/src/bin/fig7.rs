//! Regenerate the paper's fig7 (see `ntv_bench::experiments::fig7`).

use ntv_bench::{experiments::fig7, ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};

fn main() {
    let samples = match "fig7" {
        "fig1" | "fig2" | "fig11" => CIRCUIT_SAMPLES,
        _ => ARCH_SAMPLES,
    };
    println!("{}", fig7::run(samples, DEFAULT_SEED));
}
