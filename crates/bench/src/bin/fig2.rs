//! Regenerate the paper's fig2 (see `ntv_bench::experiments::fig2`).

use ntv_bench::{experiments::fig2, ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};

fn main() {
    let samples = match "fig2" {
        "fig1" | "fig2" | "fig11" => CIRCUIT_SAMPLES,
        _ => ARCH_SAMPLES,
    };
    println!("{}", fig2::run(samples, DEFAULT_SEED));
}
