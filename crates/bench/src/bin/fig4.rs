//! Regenerate the paper's fig4 (see `ntv_bench::experiments::fig4`).

use ntv_bench::{experiments::fig4, ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};

fn main() {
    let samples = match "fig4" {
        "fig1" | "fig2" | "fig11" => CIRCUIT_SAMPLES,
        _ => ARCH_SAMPLES,
    };
    println!("{}", fig4::run(samples, DEFAULT_SEED));
}
