//! Regenerate the paper's fig8 (see `ntv_bench::experiments::fig8`).

use ntv_bench::{experiments::fig8, ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};

fn main() {
    let samples = match "fig8" {
        "fig1" | "fig2" | "fig11" => CIRCUIT_SAMPLES,
        _ => ARCH_SAMPLES,
    };
    println!("{}", fig8::run(samples, DEFAULT_SEED));
}
