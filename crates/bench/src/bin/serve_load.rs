//! Load bench for the `ntv-serve` query service: concurrent keep-alive
//! clients firing mixed analytic batches over real TCP, reporting
//! throughput and request-latency percentiles, plus the double-run
//! byte-identity check with a deliberately tiny (eviction-stressing)
//! cache bound.
//!
//! ```text
//! cargo run --release -p ntv-bench --bin serve_load [-- OPTIONS]
//! ```
//!
//! Options:
//!
//! * `--clients N`   concurrent client connections (default 2);
//! * `--requests N`  requests per client (default 800);
//! * `--batch N`     queries per request (default 8);
//! * `--out PATH`    also write the summary as JSON.
//!
//! The workload is deterministic: every client sends the same request
//! sequence, so the identity phase can assert byte-equality across two
//! complete passes against two separate server instances.

use std::io::Write as _;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ntv_serve::client::Connection;
use ntv_serve::{serve, ServeConfig};

struct Options {
    clients: usize,
    requests: usize,
    batch: usize,
    out: Option<String>,
}

fn parse_options() -> Result<Options, ExitCode> {
    let mut options = Options {
        clients: 2,
        requests: 800,
        batch: 8,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || {
            args.next().ok_or_else(|| {
                eprintln!("{arg} expects a value");
                ExitCode::FAILURE
            })
        };
        match arg.as_str() {
            "--clients" => options.clients = parse_count(&value()?)?,
            "--requests" => options.requests = parse_count(&value()?)?,
            "--batch" => options.batch = parse_count(&value()?)?,
            "--out" => options.out = Some(value()?),
            other => {
                eprintln!(
                    "unrecognised argument `{other}`\n\
                     usage: serve_load [--clients N] [--requests N] [--batch N] [--out PATH]"
                );
                return Err(ExitCode::FAILURE);
            }
        }
    }
    Ok(options)
}

fn parse_count(s: &str) -> Result<usize, ExitCode> {
    match s.parse::<usize>() {
        Ok(n) if n > 0 => Ok(n),
        _ => {
            eprintln!("expected a positive integer, got `{s}`");
            Err(ExitCode::FAILURE)
        }
    }
}

/// The headline analytic probe mix: mostly chip-quantile probes over a
/// voltage grid across two nodes, salted with a spares quantile and a
/// margin solve per 16 queries. The heavy kinds (`min_spares`, `dse`,
/// `sweep`) are measured separately in the per-kind phase — they cost
/// 1–2 orders of magnitude more per query by construction (spare-count
/// bisection, margin search per candidate), and folding them into the
/// probe mix would only report a blend no client actually sends.
fn batch_body(batch: usize, request_index: usize) -> String {
    let mut queries = Vec::with_capacity(batch);
    for i in 0..batch {
        let slot = (request_index * batch + i) % 16;
        let vdd = 0.5 + 0.01 * f64::from(u8::try_from(slot).unwrap_or(0));
        match i % 16 {
            7 => queries.push(format!(
                r#"{{"kind":"quantile","node":"90nm","vdd":{vdd},"spares":2}}"#
            )),
            15 => queries.push(format!(r#"{{"kind":"margin","node":"45nm","vdd":{vdd}}}"#)),
            _ => {
                let node = if i % 2 == 0 { "90nm" } else { "45nm" };
                queries.push(format!(
                    r#"{{"kind":"quantile","node":"{node}","vdd":{vdd}}}"#
                ));
            }
        }
    }
    format!(r#"{{"queries":[{}]}}"#, queries.join(","))
}

/// One-kind request bodies for the per-kind phase.
fn kind_body(kind: &str, batch: usize) -> String {
    let queries: Vec<String> = (0..batch)
        .map(|i| {
            let vdd = 0.5 + 0.01 * f64::from(u8::try_from(i % 16).unwrap_or(0));
            match kind {
                "quantile" => format!(r#"{{"kind":"quantile","node":"90nm","vdd":{vdd}}}"#),
                "quantile_spares" => {
                    format!(r#"{{"kind":"quantile","node":"90nm","vdd":{vdd},"spares":2}}"#)
                }
                "margin" => format!(r#"{{"kind":"margin","node":"45nm","vdd":{vdd}}}"#),
                "min_spares" => format!(r#"{{"kind":"min_spares","node":"90nm","vdd":{vdd}}}"#),
                "dse" => format!(r#"{{"kind":"dse","node":"90nm","vdd":{vdd},"spares":[0,2,8]}}"#),
                _ => r#"{"kind":"sweep","node":"90nm","vdd_start":0.5,"vdd_stop":0.66,"steps":16}"#
                    .to_string(),
            }
        })
        .collect();
    format!(r#"{{"queries":[{}]}}"#, queries.join(","))
}

/// Measure one kind's cost over HTTP: `requests` keep-alive round trips
/// of `batch` identical-kind queries, returning µs per query.
fn time_kind(
    addr: std::net::SocketAddr,
    kind: &str,
    batch: usize,
    requests: usize,
) -> Result<f64, String> {
    let body = kind_body(kind, batch);
    let mut conn = Connection::open(addr).map_err(|e| format!("connect: {e}"))?;
    // Warm operating points and code paths.
    let warm = conn.query(&body).map_err(|e| format!("warmup: {e}"))?;
    if warm.status != 200 {
        return Err(format!("{kind}: status {} {}", warm.status, warm.body));
    }
    let started = Instant::now();
    for _ in 0..requests {
        let response = conn.query(&body).map_err(|e| format!("query: {e}"))?;
        if response.status != 200 {
            return Err(format!("{kind}: status {}", response.status));
        }
    }
    #[allow(clippy::cast_precision_loss)]
    Ok(started.elapsed().as_secs_f64() * 1e6 / (requests * batch) as f64)
}

/// Sorted-latency percentile (nearest-rank).
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Phase 1: the double-run identity check. Two fresh servers, an 8-entry
/// cache bound the scripted set overflows, byte-compared bodies.
fn identity_check() -> Result<(), String> {
    let scripted: Vec<String> = (0..24)
        .map(|i| {
            let vdd = 0.5 + 0.008 * f64::from(i);
            format!(r#"{{"kind":"quantile","node":"90nm","vdd":{vdd}}}"#)
        })
        .chain([
            r#"{"kind":"margin","node":"45nm","vdd":0.6}"#.to_string(),
            r#"{"kind":"dse","node":"90nm","vdd":0.55,"spares":[0,2,8]}"#.to_string(),
            r#"{"kind":"sweep","node":"22nm","vdd_start":0.5,"vdd_stop":0.7,"steps":9}"#
                .to_string(),
        ])
        .collect();
    let run = || -> Result<Vec<String>, String> {
        let handle = serve(&ServeConfig {
            cache_bound: Some(8),
            workers: 1,
            ..ServeConfig::default()
        })
        .map_err(|e| format!("bind: {e}"))?;
        let mut conn = Connection::open(handle.addr()).map_err(|e| format!("connect: {e}"))?;
        let mut bodies = Vec::with_capacity(scripted.len());
        for query in &scripted {
            let response = conn.query(query).map_err(|e| format!("query: {e}"))?;
            if response.status != 200 {
                return Err(format!("status {}: {}", response.status, response.body));
            }
            bodies.push(response.body);
        }
        handle.shutdown();
        Ok(bodies)
    };
    let (first, second) = (run()?, run()?);
    if first == second {
        Ok(())
    } else {
        let diverged = first
            .iter()
            .zip(&second)
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        Err(format!("bodies diverged at scripted query {diverged}"))
    }
}

fn main() -> ExitCode {
    let options = match parse_options() {
        Ok(o) => o,
        Err(code) => return code,
    };

    println!("== double-run byte identity (bounded cache, two server instances) ==");
    match identity_check() {
        Ok(()) => println!("identical: yes"),
        Err(e) => {
            eprintln!("IDENTITY FAILURE: {e}");
            return ExitCode::FAILURE;
        }
    }

    println!(
        "\n== load: {} clients x {} requests x {}-query batches ==",
        options.clients, options.requests, options.batch
    );
    let handle = match serve(&ServeConfig {
        workers: options.clients,
        cache_bound: Some(1024),
        ..ServeConfig::default()
    }) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = handle.addr();

    // Warm the operating points once so the timed section measures query
    // service, not one-time Gauss-Hermite builds (mirrors BENCH_sweep).
    {
        let mut conn = match Connection::open(addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("warmup connect: {e}");
                return ExitCode::FAILURE;
            }
        };
        for r in 0..16 {
            if conn.query(&batch_body(options.batch, r)).is_err() {
                eprintln!("warmup query failed");
                return ExitCode::FAILURE;
            }
        }
    }

    let started = Instant::now();
    let mut all_latencies: Vec<Duration> = Vec::new();
    let mut failures = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut latencies = Vec::with_capacity(options.requests);
                    let mut conn = Connection::open(addr).ok()?;
                    for r in 0..options.requests {
                        let body = batch_body(options.batch, r);
                        let sent = Instant::now();
                        let response = conn.query(&body).ok()?;
                        if response.status != 200 {
                            return None;
                        }
                        latencies.push(sent.elapsed());
                    }
                    Some(latencies)
                })
            })
            .collect();
        for h in handles {
            match h.join().expect("client thread") {
                Some(latencies) => all_latencies.extend(latencies),
                None => failures += 1,
            }
        }
    });
    let elapsed = started.elapsed();
    if failures > 0 {
        eprintln!("{failures} client(s) failed");
        return ExitCode::FAILURE;
    }

    all_latencies.sort_unstable();
    let total_requests = options.clients * options.requests;
    let total_queries = total_requests * options.batch;
    #[allow(clippy::cast_precision_loss)]
    let qps = total_queries as f64 / elapsed.as_secs_f64();
    let (p50, p99) = (
        percentile(&all_latencies, 0.50),
        percentile(&all_latencies, 0.99),
    );
    #[allow(clippy::cast_precision_loss)]
    let per_query_us = elapsed.as_secs_f64() * 1e6 / total_queries as f64;

    println!("elapsed           : {:.3} s", elapsed.as_secs_f64());
    println!("queries           : {total_queries}");
    println!("throughput        : {qps:.0} queries/s");
    println!("mean cost/query   : {per_query_us:.2} us");
    println!(
        "request latency   : p50 {:.0} us, p99 {:.0} us ({}-query batches)",
        p50.as_secs_f64() * 1e6,
        p99.as_secs_f64() * 1e6,
        options.batch
    );

    // Cache behaviour over the run, from the service's own endpoint.
    if let Ok(mut conn) = Connection::open(addr) {
        if let Ok(stats) = conn.request("GET", "/stats", "") {
            println!("stats             : {}", stats.body);
        }
    }

    println!("\n== per-kind cost over HTTP (keep-alive, 16-query batches) ==");
    let mut kind_costs: Vec<(&str, f64)> = Vec::new();
    for (kind, requests) in [
        ("quantile", 200),
        ("quantile_spares", 100),
        ("margin", 50),
        ("min_spares", 20),
        ("sweep", 20),
        ("dse", 5),
    ] {
        match time_kind(addr, kind, 16, requests) {
            Ok(us) => {
                println!("{kind:<16}: {us:>9.2} us/query");
                kind_costs.push((kind, us));
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    handle.shutdown();

    if let Some(path) = options.out {
        let kinds = kind_costs
            .iter()
            .map(|(kind, us)| format!("\"{kind}\":{us}"))
            .collect::<Vec<_>>()
            .join(",");
        let json = format!(
            "{{\"benchmark\":\"serve_load\",\"clients\":{},\"requests_per_client\":{},\"batch\":{},\"elapsed_s\":{},\"queries\":{},\"queries_per_s\":{},\"request_p50_us\":{},\"request_p99_us\":{},\"mean_us_per_query\":{},\"per_kind_us\":{{{kinds}}}}}",
            options.clients,
            options.requests,
            options.batch,
            elapsed.as_secs_f64(),
            total_queries,
            qps,
            p50.as_secs_f64() * 1e6,
            p99.as_secs_f64() * 1e6,
            per_query_us,
        );
        match std::fs::File::create(&path).and_then(|mut f| writeln!(f, "{json}")) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
