//! Regenerate the paper's Fig 9 (energy/delay regions) for every node.

use ntv_bench::experiments::fig9;
use ntv_device::TechNode;

fn main() {
    for node in TechNode::ALL {
        println!("{}", fig9::run_for(node));
    }
}
