//! Regenerate the paper's table3 (see `ntv_bench::experiments::table3`).

use ntv_bench::{experiments::table3, ARCH_SAMPLES, CIRCUIT_SAMPLES, DEFAULT_SEED};

fn main() {
    let samples = match "table3" {
        "fig1" | "fig2" | "fig11" => CIRCUIT_SAMPLES,
        _ => ARCH_SAMPLES,
    };
    println!("{}", table3::run(samples, DEFAULT_SEED));
}
