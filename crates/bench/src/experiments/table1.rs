//! Table 1: required spare count and area/power overhead of structural
//! duplication for the four nodes at 0.50–0.70 V.
//!
//! Solved on the analytic quantile path (exact order statistics, no MC
//! noise); `samples`/`seed` are accepted for interface uniformity but do
//! not affect the result.

use ntv_core::duplication::DuplicationStudy;
use ntv_core::{DatapathConfig, DatapathEngine, Evaluation, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::experiments::TABLE_VOLTAGES;
use crate::table::TextTable;

/// One Table 1 cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table1Cell {
    /// Technology node.
    pub node: TechNode,
    /// Supply voltage (V).
    pub vdd: f64,
    /// Required spares, if ≤128 (`None` reproduces the paper's ">128").
    pub spares: Option<u32>,
    /// Area overhead (fraction), if solvable.
    pub area_overhead: Option<f64>,
    /// Power overhead (fraction), if solvable.
    pub power_overhead: Option<f64>,
}

/// Full Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Result {
    /// Cells in node-major, descending-voltage order.
    pub cells: Vec<Table1Cell>,
}

impl Table1Result {
    /// The cell for a node/voltage, if computed.
    #[must_use]
    pub fn cell(&self, node: TechNode, vdd: f64) -> Option<&Table1Cell> {
        self.cells
            .iter()
            .find(|c| c.node == node && (c.vdd - vdd).abs() < 1e-9)
    }
}

/// Regenerate Table 1 (all available cores).
#[must_use]
pub fn run(samples: usize, seed: u64) -> Table1Result {
    run_with(samples, seed, Executor::default())
}

/// Regenerate Table 1 on an explicit executor.
#[must_use]
pub fn run_with(samples: usize, seed: u64, exec: Executor) -> Table1Result {
    let mut cells = Vec::new();
    for &node in &TechNode::ALL {
        let tech = TechModel::new(node);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        engine.prefetch(&TABLE_VOLTAGES.map(Volts), exec);
        let study = DuplicationStudy::new(&engine)
            .with_executor(exec)
            .with_evaluation(Evaluation::Analytic);
        for &vdd in &TABLE_VOLTAGES {
            let cell = match study.solve(Volts(vdd), 128, samples, seed) {
                Ok(sol) => Table1Cell {
                    node,
                    vdd,
                    spares: Some(sol.spares),
                    area_overhead: Some(sol.area_overhead),
                    power_overhead: Some(sol.power_overhead),
                },
                Err(_) => Table1Cell {
                    node,
                    vdd,
                    spares: None,
                    area_overhead: None,
                    power_overhead: None,
                },
            };
            cells.push(cell);
        }
    }
    Table1Result { cells }
}

impl std::fmt::Display for Table1Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 1 — spares and overheads of structural duplication"
        )?;
        let mut t = TextTable::new(&["node", "Vdd (V)", "spares", "area ovhd", "power ovhd"]);
        for c in &self.cells {
            t.row(&[
                c.node.to_string(),
                format!("{:.2}", c.vdd),
                c.spares
                    .map_or_else(|| ">128".to_owned(), |s| s.to_string()),
                c.area_overhead
                    .map_or_else(|| ">57.8%".to_owned(), |a| format!("{:.1}%", a * 100.0)),
                c.power_overhead
                    .map_or_else(|| ">25.0%".to_owned(), |p| format!("{:.1}%", p * 100.0)),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntv_device::calib;

    #[test]
    fn reproduces_90nm_column() {
        let r = run(4000, 19);
        for (vdd, paper_spares) in calib::TABLE1_SPARES_90NM {
            let cell = r.cell(TechNode::Gp90, vdd).expect("cell computed");
            let got = cell.spares.expect("90nm is always solvable");
            // Shape tolerance: within ~2.5x of the paper's count, and the
            // strong low-voltage growth must hold.
            let lo = (f64::from(paper_spares) / 2.5).floor() as u32;
            let hi = (f64::from(paper_spares) * 2.5).ceil() as u32;
            assert!(
                (lo..=hi.max(2)).contains(&got),
                "90nm @{vdd} V: {got} spares vs paper {paper_spares}"
            );
        }
        let s05 = r
            .cell(TechNode::Gp90, 0.50)
            .and_then(|c| c.spares)
            .expect("solvable");
        let s07 = r
            .cell(TechNode::Gp90, 0.70)
            .and_then(|c| c.spares)
            .expect("solvable");
        assert!(
            s05 >= 10 * s07.max(1),
            "exponential spare growth: {s05} vs {s07}"
        );
    }

    #[test]
    fn scaled_nodes_exceed_budget_at_half_volt() {
        let r = run(2500, 20);
        for node in [TechNode::Gp45, TechNode::PtmHp32, TechNode::PtmHp22] {
            let cell = r.cell(node, 0.50).expect("cell computed");
            assert!(
                cell.spares.is_none(),
                "{node} @0.5 V should need >128 spares"
            );
        }
    }

    #[test]
    fn overheads_follow_budget() {
        let r = run(2000, 21);
        let cell = r.cell(TechNode::Gp90, 0.60).expect("computed");
        let (s, a, p) = (
            cell.spares.expect("solvable"),
            cell.area_overhead.expect("solvable"),
            cell.power_overhead.expect("solvable"),
        );
        let budget = ntv_core::DietSodaBudget::paper();
        assert!((a - budget.duplication_area_overhead(s)).abs() < 1e-12);
        assert!((p - budget.duplication_power_overhead(s)).abs() < 1e-12);
    }

    #[test]
    fn display_marks_unsolvable_cells() {
        let r = run(1000, 22);
        let text = r.to_string();
        assert!(text.contains(">128"));
        assert!(text.contains(">57.8%"));
    }
}
