//! Fig 2: delay variation (3σ/μ) of a chain of 50 FO4 inverters vs supply
//! voltage, for all four technology nodes (each up to its nominal voltage).

use ntv_circuit::chain::ChainMc;
use ntv_core::Executor;
use ntv_device::{TechModel, TechNode};
use ntv_mc::{CounterRng, Summary};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::experiments::voltage_grid;
use crate::table::TextTable;

/// One node's curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Curve {
    /// Technology node.
    pub node: TechNode,
    /// `(vdd, 3σ/μ)` points, ascending in voltage.
    pub points: Vec<(f64, f64)>,
}

/// Full Fig 2 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Result {
    /// One curve per node, paper order.
    pub curves: Vec<Fig2Curve>,
}

impl Fig2Result {
    /// The 3σ/μ for a node at a voltage, if that point was swept.
    #[must_use]
    pub fn value(&self, node: TechNode, vdd: f64) -> Option<f64> {
        self.curves
            .iter()
            .find(|c| c.node == node)?
            .points
            .iter()
            .find(|(v, _)| (v - vdd).abs() < 1e-9)
            .map(|&(_, s)| s)
    }
}

/// Regenerate Fig 2 (all available cores).
#[must_use]
pub fn run(samples: usize, seed: u64) -> Fig2Result {
    run_with(samples, seed, Executor::default())
}

/// Regenerate Fig 2 on an explicit executor.
///
/// The stream is index-addressed, so every `(node, vdd)` point sees the
/// same chips (common random numbers) and the curves are smooth in `vdd`.
#[must_use]
pub fn run_with(samples: usize, seed: u64, exec: Executor) -> Fig2Result {
    let stream = CounterRng::new(seed, "fig2");
    let curves = TechNode::ALL
        .iter()
        .map(|&node| {
            let tech = TechModel::new(node);
            let chain = ChainMc::new(&tech, 50);
            let points = voltage_grid(node)
                .into_iter()
                .map(|vdd| {
                    let s: Summary = exec
                        .map_indexed(samples as u64, |i| {
                            chain.sample_ps(Volts(vdd), &mut stream.at(i))
                        })
                        .into_iter()
                        .collect();
                    (vdd, s.three_sigma_over_mu())
                })
                .collect();
            Fig2Curve { node, points }
        })
        .collect();
    Fig2Result { curves }
}

impl std::fmt::Display for Fig2Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig 2 — chain-of-50 delay variation (3sigma/mu) vs Vdd")?;
        let headers: Vec<String> = std::iter::once("Vdd (V)".to_owned())
            .chain(self.curves.iter().map(|c| c.node.to_string()))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = TextTable::new(&header_refs);
        // Use the widest grid (90nm) as the row axis.
        let grid: Vec<f64> = self.curves[0].points.iter().map(|&(v, _)| v).collect();
        for &vdd in &grid {
            let mut cells = vec![format!("{vdd:.2}")];
            for c in &self.curves {
                let cell = c
                    .points
                    .iter()
                    .find(|(v, _)| (v - vdd).abs() < 1e-9)
                    .map_or_else(|| "-".to_owned(), |&(_, s)| format!("{:.1}%", s * 100.0));
                cells.push(cell);
            }
            t.row(&cells);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_match_paper_shape() {
        let result = run(500, 3);
        assert_eq!(result.curves.len(), 4);
        // Monotone decreasing with voltage for every node.
        for c in &result.curves {
            for w in c.points.windows(2) {
                assert!(w[1].1 < w[0].1 + 0.01, "{:?}", c.node);
            }
        }
        // 22nm endpoints ~ 11% @0.8V, ~25% @0.5V.
        let v22_08 = result.value(TechNode::PtmHp22, 0.8).expect("swept");
        let v22_05 = result.value(TechNode::PtmHp22, 0.5).expect("swept");
        assert!((0.07..0.15).contains(&v22_08), "{v22_08}");
        assert!((0.18..0.33).contains(&v22_05), "{v22_05}");
        // Node ordering at 0.5 V: 90 < 32 < 45 < 22.
        let at05: Vec<f64> = TechNode::ALL
            .iter()
            .map(|&n| result.value(n, 0.5).expect("swept"))
            .collect();
        assert!(
            at05[0] < at05[2] && at05[2] < at05[1] && at05[1] < at05[3],
            "{at05:?}"
        );
    }

    #[test]
    fn display_includes_all_nodes() {
        let text = run(60, 4).to_string();
        for node in TechNode::ALL {
            assert!(text.contains(&node.to_string()));
        }
    }
}
