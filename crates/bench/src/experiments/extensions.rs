//! Extension experiments beyond the paper's figures:
//!
//! * **SIMD-width sweep** — the intro's claim that wide SIMD multiplies
//!   the number of critical paths and therefore the variation penalty,
//!   made quantitative: performance drop vs datapath width.
//! * **Adaptive body bias** — the EVAL-style knob from the related-work
//!   section, priced next to voltage margining.
//! * **Timing-yield curves** — the 99 % design point generalized to full
//!   yield-vs-clock curves, with and without spares.

use ntv_core::body_bias::BodyBiasStudy;
use ntv_core::duplication::DuplicationStudy;
use ntv_core::margining::MarginStudy;
use ntv_core::perf;
use ntv_core::yield_model::{YieldPoint, YieldStudy};
use ntv_core::{DatapathConfig, DatapathEngine, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// One width point of the SIMD-width sweep.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WidthPoint {
    /// SIMD lanes.
    pub lanes: usize,
    /// Performance drop at the study voltage.
    pub drop: f64,
    /// Absolute 99 % chip delay at the study voltage (FO4 units).
    pub q99_fo4: f64,
}

/// SIMD-width sweep result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WidthSweepResult {
    /// Technology node.
    pub node: TechNode,
    /// Study voltage.
    pub vdd: f64,
    /// Drop vs width, ascending width.
    pub points: Vec<WidthPoint>,
}

/// Sweep the performance drop against datapath width (16 → 1024 lanes).
#[must_use]
pub fn width_sweep(node: TechNode, vdd: f64, samples: usize, seed: u64) -> WidthSweepResult {
    width_sweep_with(node, vdd, samples, seed, Executor::default())
}

/// [`width_sweep`] on an explicit executor.
#[must_use]
pub fn width_sweep_with(
    node: TechNode,
    vdd: f64,
    samples: usize,
    seed: u64,
    exec: Executor,
) -> WidthSweepResult {
    let tech = TechModel::new(node);
    let points = [16usize, 32, 64, 128, 256, 512, 1024]
        .iter()
        .map(|&lanes| {
            let config = DatapathConfig::new(lanes, 100, 50);
            let engine = DatapathEngine::new(&tech, config);
            let point = perf::performance_drop(&engine, Volts(vdd), samples, seed, exec);
            WidthPoint {
                lanes,
                drop: point.drop,
                q99_fo4: point.q99_fo4,
            }
        })
        .collect();
    WidthSweepResult { node, vdd, points }
}

impl std::fmt::Display for WidthSweepResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Extension — performance drop vs SIMD width, {} @{:.2} V",
            self.node, self.vdd
        )?;
        let mut t = TextTable::new(&["lanes", "critical paths", "q99 (FO4)", "drop"]);
        for p in &self.points {
            t.row(&[
                p.lanes.to_string(),
                (p.lanes * 100).to_string(),
                format!("{:.2}", p.q99_fo4),
                format!("{:.1}%", p.drop * 100.0),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Body-bias vs voltage-margin comparison at one operating point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AbbComparison {
    /// Technology node.
    pub node: TechNode,
    /// Operating voltage.
    pub vdd: f64,
    /// Required threshold reduction (V).
    pub vth_shift: f64,
    /// ABB leakage power overhead (fraction).
    pub abb_power: f64,
    /// Voltage margin (V) achieving the same target.
    pub margin: f64,
    /// Margining power overhead (fraction).
    pub margin_power: f64,
}

/// Compare adaptive body bias against voltage margining.
#[must_use]
pub fn abb_comparison(node: TechNode, vdd: f64, samples: usize, seed: u64) -> AbbComparison {
    abb_comparison_with(node, vdd, samples, seed, Executor::default())
}

/// [`abb_comparison`] on an explicit executor.
#[must_use]
pub fn abb_comparison_with(
    node: TechNode,
    vdd: f64,
    samples: usize,
    seed: u64,
    exec: Executor,
) -> AbbComparison {
    let tech = TechModel::new(node);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    let abb = BodyBiasStudy::new(&engine)
        .with_executor(exec)
        .solve(Volts(vdd), samples, seed);
    let margin = MarginStudy::new(&engine)
        .with_executor(exec)
        .solve(Volts(vdd), samples, seed);
    AbbComparison {
        node,
        vdd,
        vth_shift: abb.vth_shift.get(),
        abb_power: abb.power_overhead,
        margin: margin.margin.get(),
        margin_power: margin.power_overhead,
    }
}

impl std::fmt::Display for AbbComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Extension — ABB vs margining, {} @{:.2} V",
            self.node, self.vdd
        )?;
        writeln!(
            f,
            "  body bias: -{:.1} mV Vth -> {:.2}% power (leakage)",
            self.vth_shift * 1000.0,
            self.abb_power * 100.0
        )?;
        writeln!(
            f,
            "  margining: +{:.1} mV Vdd -> {:.2}% power (switching)",
            self.margin * 1000.0,
            self.margin_power * 100.0
        )
    }
}

/// Yield curves with and without spares at one operating point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct YieldCurvesResult {
    /// Technology node.
    pub node: TechNode,
    /// Operating voltage.
    pub vdd: f64,
    /// `(spares, curve)` pairs.
    pub curves: Vec<(u32, Vec<YieldPoint>)>,
}

/// Timing-yield curves for 0, 4 and 12 spares.
#[must_use]
pub fn yield_curves(node: TechNode, vdd: f64, samples: usize, seed: u64) -> YieldCurvesResult {
    yield_curves_with(node, vdd, samples, seed, Executor::default())
}

/// [`yield_curves`] on an explicit executor.
#[must_use]
pub fn yield_curves_with(
    node: TechNode,
    vdd: f64,
    samples: usize,
    seed: u64,
    exec: Executor,
) -> YieldCurvesResult {
    let tech = TechModel::new(node);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    let study = YieldStudy::new(&engine).with_executor(exec);
    let dup = DuplicationStudy::new(&engine).with_executor(exec);
    let matrix = dup.sample_matrix(Volts(vdd), 12, samples, seed);
    let fo4_ns = engine.fo4_unit_ps(Volts(vdd)) / 1000.0;
    let grid: Vec<f64> = (0..12)
        .map(|i| (51.0 + f64::from(i) * 0.5) * fo4_ns)
        .collect();

    let curves = [0u32, 4, 12]
        .iter()
        .map(|&spares| {
            let curve = grid
                .iter()
                .map(|&t| YieldPoint {
                    t_clk_ns: t,
                    timing_yield: study.yield_with_spares(&matrix, spares, t),
                })
                .collect();
            (spares, curve)
        })
        .collect();
    YieldCurvesResult { node, vdd, curves }
}

impl std::fmt::Display for YieldCurvesResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Extension — timing yield vs clock, {} @{:.2} V",
            self.node, self.vdd
        )?;
        let headers: Vec<String> = std::iter::once("Tclk (ns)".to_owned())
            .chain(self.curves.iter().map(|(s, _)| format!("{s} spares")))
            .collect();
        let refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = TextTable::new(&refs);
        let n_points = self.curves[0].1.len();
        for i in 0..n_points {
            let mut cells = vec![format!("{:.2}", self.curves[0].1[i].t_clk_ns)];
            for (_, curve) in &self.curves {
                cells.push(format!("{:.1}%", curve[i].timing_yield * 100.0));
            }
            t.row(&cells);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_grows_with_simd_width() {
        let r = width_sweep(TechNode::Gp90, 0.55, 1500, 40);
        // Absolute chip delay grows decisively with width (more critical
        // paths under the max).
        for w in r.points.windows(2) {
            assert!(w[1].q99_fo4 > w[0].q99_fo4, "{:?}", r.points);
        }
        let first = r.points.first().expect("points");
        let last = r.points.last().expect("points");
        assert!(last.q99_fo4 > first.q99_fo4 + 0.5);
        // The *relative* drop grows only weakly: the nominal-voltage
        // baseline pays the same max-of-N amplification, so most of the
        // width penalty divides out — the quantitative backing for the
        // paper's "wide SIMD is still fine at 90 nm" conclusion.
        assert!(last.drop > first.drop + 0.003, "{first:?} vs {last:?}");
        assert!(last.drop < 2.0 * first.drop + 0.02);
    }

    #[test]
    fn abb_competes_with_margining() {
        let c = abb_comparison(TechNode::Gp90, 0.6, 1200, 41);
        // Both knobs land in the same few-millivolt regime and percent-scale
        // power cost.
        assert!(c.vth_shift > 0.0 && c.vth_shift < 0.03, "{c:?}");
        assert!(c.abb_power > 0.0 && c.abb_power < 0.05, "{c:?}");
        assert!(c.margin > 0.0 && c.margin_power < 0.05);
    }

    #[test]
    fn spares_shift_yield_curves_left() {
        let r = yield_curves(TechNode::Gp90, 0.55, 1500, 42);
        // At every clock, more spares -> no worse yield; somewhere strictly
        // better.
        let mut strictly = false;
        for i in 0..r.curves[0].1.len() {
            let y0 = r.curves[0].1[i].timing_yield;
            let y12 = r.curves[2].1[i].timing_yield;
            assert!(y12 >= y0);
            if y12 > y0 + 0.02 {
                strictly = true;
            }
        }
        assert!(strictly, "12 spares should visibly improve yield somewhere");
    }
}
