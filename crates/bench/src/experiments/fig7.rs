//! Fig 7: power-overhead comparison between structural duplication and
//! voltage margining across the NTV band, for all four technology nodes.
//!
//! Solved on the analytic quantile path (exact order statistics, no MC
//! noise); the sweep's operating points are prefetched in parallel.
//! `samples`/`seed` are accepted for interface uniformity but do not
//! affect the result.

use ntv_core::compare::{compare_sweep_with, ComparisonPoint, Technique};
use ntv_core::{DatapathConfig, DatapathEngine, Evaluation, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::experiments::TABLE_VOLTAGES;
use crate::table::TextTable;

/// One node's comparison panel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Panel {
    /// Technology node.
    pub node: TechNode,
    /// Per-voltage comparison points.
    pub points: Vec<ComparisonPoint>,
}

impl Fig7Panel {
    /// Preferred technique at each swept voltage.
    #[must_use]
    pub fn preferences(&self) -> Vec<(f64, Technique)> {
        self.points
            .iter()
            .map(|p| (p.vdd.get(), p.preferred()))
            .collect()
    }
}

/// Full Fig 7 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// One panel per node, paper order.
    pub panels: Vec<Fig7Panel>,
}

/// Regenerate Fig 7 (all available cores).
#[must_use]
pub fn run(samples: usize, seed: u64) -> Fig7Result {
    run_with(samples, seed, Executor::default())
}

/// Regenerate Fig 7 on an explicit executor.
#[must_use]
pub fn run_with(samples: usize, seed: u64, exec: Executor) -> Fig7Result {
    let panels = TechNode::ALL
        .iter()
        .map(|&node| {
            let tech = TechModel::new(node);
            let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
            Fig7Panel {
                node,
                points: compare_sweep_with(
                    &engine,
                    &TABLE_VOLTAGES.map(Volts),
                    128,
                    samples,
                    seed,
                    exec,
                    Evaluation::Analytic,
                ),
            }
        })
        .collect();
    Fig7Result { panels }
}

impl std::fmt::Display for Fig7Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 7 — power overhead: duplication vs voltage margining"
        )?;
        for panel in &self.panels {
            writeln!(f, "\n({})", panel.node)?;
            let mut t = TextTable::new(&["Vdd (V)", "dup power", "margin power", "winner"]);
            for p in &panel.points {
                t.row(&[
                    format!("{:.2}", p.vdd.get()),
                    p.duplication_power.map_or_else(
                        || ">25% (>128 spares)".to_owned(),
                        |x| format!("{:.1}%", x * 100.0),
                    ),
                    format!("{:.1}%", p.margining_power * 100.0),
                    p.preferred().to_string(),
                ]);
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_structure_matches_paper() {
        let r = run(2000, 13);
        // 90nm panel: duplication wins across the high-NTV band.
        let p90 = &r.panels[0];
        let high_ntv: Vec<Technique> = p90
            .preferences()
            .into_iter()
            .filter(|&(v, _)| v >= 0.6)
            .map(|(_, t)| t)
            .collect();
        assert!(
            high_ntv.contains(&Technique::Duplication),
            "90nm high-NTV should favour duplication somewhere: {high_ntv:?}"
        );
        // Scaled nodes at 0.5 V: duplication needs >128 spares, margining wins.
        for panel in &r.panels[1..] {
            let p05 = &panel.points[0];
            assert_eq!(p05.vdd, Volts(0.5));
            assert_eq!(
                p05.preferred(),
                Technique::VoltageMargining,
                "{:?}",
                panel.node
            );
        }
    }

    #[test]
    fn display_renders_all_panels() {
        let text = run(400, 14).to_string();
        for node in TechNode::ALL {
            assert!(text.contains(&node.to_string()));
        }
        assert!(text.contains("winner"));
    }
}
