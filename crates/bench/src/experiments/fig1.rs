//! Fig 1: delay distributions of a single inverter and a chain of 50 FO4
//! inverters at 0.5–1.0 V, 90 nm GP, 1000 samples each.

use ntv_circuit::chain::ChainMc;
use ntv_core::Executor;
use ntv_device::calib;
use ntv_device::{TechModel, TechNode};
use ntv_mc::{CounterRng, Histogram, Summary};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// One voltage point of Fig 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Row {
    /// Supply voltage (V).
    pub vdd: f64,
    /// Measured single-inverter 3σ/μ.
    pub single_3s: f64,
    /// Paper's single-inverter 3σ/μ.
    pub single_paper: f64,
    /// Measured chain-of-50 3σ/μ.
    pub chain_3s: f64,
    /// Paper's chain-of-50 3σ/μ.
    pub chain_paper: f64,
    /// Mean chain delay (ns).
    pub chain_mean_ns: f64,
}

/// Full Fig 1 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Per-voltage rows, nominal voltage first (paper order).
    pub rows: Vec<Fig1Row>,
    /// Single-inverter delay histogram at 0.5 V (the widest case).
    pub single_hist_05v: Histogram,
    /// Chain-of-50 delay histogram at 0.5 V.
    pub chain_hist_05v: Histogram,
}

/// Regenerate Fig 1 (all available cores).
#[must_use]
pub fn run(samples: usize, seed: u64) -> Fig1Result {
    run_with(samples, seed, Executor::default())
}

/// Regenerate Fig 1 on an explicit executor.
///
/// Chip `i` is addressed as `(seed, label, i)`, so every voltage row reuses
/// the same chips (common random numbers) and the result is bit-identical
/// for any thread count.
#[must_use]
pub fn run_with(samples: usize, seed: u64, exec: Executor) -> Fig1Result {
    let tech = TechModel::new(TechNode::Gp90);
    let single = ChainMc::new(&tech, 1);
    let chain = ChainMc::new(&tech, 50);
    let base = CounterRng::new(seed, "fig1");
    let single_stream = base.stream("single");
    let chain_stream = base.stream("chain");

    let mut rows = Vec::new();
    for (i, &(vdd, single_paper)) in calib::FIG1_SINGLE_INVERTER_90NM.iter().enumerate() {
        let chain_paper = calib::FIG1_CHAIN50_90NM[i].1;
        let s_single: Summary = exec
            .map_indexed(samples as u64, |j| {
                single.sample_ps(Volts(vdd), &mut single_stream.at(j))
            })
            .into_iter()
            .collect();
        let chain_samples = exec.map_indexed(samples as u64, |j| {
            chain.sample_ps(Volts(vdd), &mut chain_stream.at(j))
        });
        let s_chain: Summary = chain_samples.iter().copied().collect();
        rows.push(Fig1Row {
            vdd,
            single_3s: s_single.three_sigma_over_mu(),
            single_paper,
            chain_3s: s_chain.three_sigma_over_mu(),
            chain_paper,
            chain_mean_ns: s_chain.mean() / 1000.0,
        });
    }

    let hist = base.stream("hist");
    let (hist_single, hist_chain) = (hist.stream("single"), hist.stream("chain"));
    let single_05 = exec.map_indexed(samples as u64, |j| {
        single.sample_ps(Volts(0.5), &mut hist_single.at(j))
    });
    let chain_05 = exec.map_indexed(samples as u64, |j| {
        chain.sample_ps(Volts(0.5), &mut hist_chain.at(j))
    });

    Fig1Result {
        rows,
        single_hist_05v: Histogram::from_samples(&single_05, 40),
        chain_hist_05v: Histogram::from_samples(&chain_05, 40),
    }
}

impl std::fmt::Display for Fig1Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig 1 — delay variation (3sigma/mu), 90nm GP")?;
        let mut t = TextTable::new(&[
            "Vdd (V)",
            "inv model",
            "inv paper",
            "chain-50 model",
            "chain-50 paper",
            "chain mean (ns)",
        ]);
        for r in &self.rows {
            t.row(&[
                format!("{:.2}", r.vdd),
                format!("{:.2}%", r.single_3s * 100.0),
                format!("{:.2}%", r.single_paper * 100.0),
                format!("{:.2}%", r.chain_3s * 100.0),
                format!("{:.2}%", r.chain_paper * 100.0),
                format!("{:.2}", r.chain_mean_ns),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "single-inverter delay histogram @0.5 V (ps):")?;
        writeln!(f, "{}", self.single_hist_05v.render_ascii(50))?;
        writeln!(f, "chain-of-50 delay histogram @0.5 V (ps):")?;
        writeln!(f, "{}", self.chain_hist_05v.render_ascii(50))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_within_tolerance() {
        let result = run(600, 1);
        assert_eq!(result.rows.len(), 6);
        for r in &result.rows {
            assert!(
                calib::relative_error(r.single_3s, r.single_paper) < 0.35,
                "single at {} V: {} vs {}",
                r.vdd,
                r.single_3s,
                r.single_paper
            );
            assert!(
                calib::relative_error(r.chain_3s, r.chain_paper) < 0.35,
                "chain at {} V: {} vs {}",
                r.vdd,
                r.chain_3s,
                r.chain_paper
            );
        }
        // Absolute chain delay at 0.5 V ~ 22 ns.
        let r05 = result
            .rows
            .iter()
            .find(|r| r.vdd == 0.5)
            .expect("0.5 V row");
        assert!((r05.chain_mean_ns - 22.05).abs() < 2.0);
        // Histograms carry all samples.
        assert_eq!(result.single_hist_05v.total(), 600);
    }

    #[test]
    fn display_prints_all_rows() {
        let result = run(100, 2);
        let text = result.to_string();
        assert!(text.contains("Fig 1"));
        assert!(text.contains("0.50"));
        assert!(text.contains("histogram"));
    }
}
