//! Fig 4: variation-induced performance drop of the 128-wide SIMD
//! datapath vs supply voltage, for all four technology nodes.

use ntv_core::perf::{performance_drop_sweep, PerfDropPoint};
use ntv_core::{DatapathConfig, DatapathEngine, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::experiments::voltage_grid;
use crate::table::TextTable;

/// One node's performance-drop curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Curve {
    /// Technology node.
    pub node: TechNode,
    /// Sweep points, ascending in voltage.
    pub points: Vec<PerfDropPoint>,
}

/// Full Fig 4 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// One curve per node, paper order.
    pub curves: Vec<Fig4Curve>,
}

impl Fig4Result {
    /// The drop for a node at a voltage, if swept.
    #[must_use]
    pub fn drop(&self, node: TechNode, vdd: f64) -> Option<f64> {
        self.curves
            .iter()
            .find(|c| c.node == node)?
            .points
            .iter()
            .find(|p| (p.vdd.get() - vdd).abs() < 1e-9)
            .map(|p| p.drop)
    }
}

/// Regenerate Fig 4 (all available cores).
#[must_use]
pub fn run(samples: usize, seed: u64) -> Fig4Result {
    run_with(samples, seed, Executor::default())
}

/// Regenerate Fig 4 on an explicit executor.
#[must_use]
pub fn run_with(samples: usize, seed: u64, exec: Executor) -> Fig4Result {
    let curves = TechNode::ALL
        .iter()
        .map(|&node| {
            let tech = TechModel::new(node);
            let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
            let grid: Vec<Volts> = voltage_grid(node).into_iter().map(Volts).collect();
            Fig4Curve {
                node,
                points: performance_drop_sweep(&engine, &grid, samples, seed, exec),
            }
        })
        .collect();
    Fig4Result { curves }
}

impl std::fmt::Display for Fig4Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig 4 — performance drop (%) of the 128-wide datapath")?;
        writeln!(
            f,
            "(paper anchors: 90nm 5.0/2.5/1.5% at 0.50/0.55/0.60 V; 22nm ~18% at 0.50 V)"
        )?;
        let headers: Vec<String> = std::iter::once("Vdd (V)".to_owned())
            .chain(self.curves.iter().map(|c| c.node.to_string()))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = TextTable::new(&header_refs);
        let grid: Vec<f64> = self.curves[0].points.iter().map(|p| p.vdd.get()).collect();
        for &vdd in &grid {
            let mut cells = vec![format!("{vdd:.2}")];
            for c in &self.curves {
                let cell = c
                    .points
                    .iter()
                    .find(|p| (p.vdd.get() - vdd).abs() < 1e-9)
                    .map_or_else(|| "-".to_owned(), |p| format!("{:.1}%", p.drop * 100.0));
                cells.push(cell);
            }
            t.row(&cells);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntv_device::calib;

    #[test]
    fn matches_paper_anchor_points() {
        let r = run(3000, 7);
        for (vdd, want) in calib::FIG4_PERF_DROP_90NM {
            let got = r.drop(TechNode::Gp90, vdd).expect("swept");
            assert!(
                (got - want).abs() < want.max(0.01),
                "90nm @{vdd} V: {got} vs paper {want}"
            );
        }
        let d22 = r.drop(TechNode::PtmHp22, 0.5).expect("swept");
        assert!(
            (d22 - calib::FIG4_PERF_DROP_22NM_05V).abs() < 0.08,
            "22nm @0.5 V: {d22} vs paper {}",
            calib::FIG4_PERF_DROP_22NM_05V
        );
    }

    #[test]
    fn drop_decreases_with_voltage_for_every_node() {
        let r = run(2000, 8);
        for c in &r.curves {
            for w in c.points.windows(2) {
                assert!(w[1].drop <= w[0].drop + 0.005, "{:?}", c.node);
            }
        }
    }
}
