//! One module per paper table/figure.
//!
//! Each module exposes `run(samples, seed) -> …Result` returning structured
//! data, plus `run_with(samples, seed, exec)` taking an
//! [`ntv_core::Executor`] so the same experiment parallelises with
//! bit-identical output (`run` delegates to the serial default). The result
//! type implements `Display` to print the paper-style rows. Paper reference
//! values (where the paper prints them) are carried alongside the measured
//! values so the output doubles as the EXPERIMENTS.md evidence.

pub mod extensions;
pub mod fig1;
pub mod fig11;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod placement;
pub mod policies;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

use ntv_device::TechNode;

/// The paper's NTV voltage grid for Tables 1, 2 and 4.
pub const TABLE_VOLTAGES: [f64; 5] = [0.50, 0.55, 0.60, 0.65, 0.70];

/// Voltage grid for a node's figures: 0.5 V up to the node's nominal
/// voltage in 50 mV steps.
#[must_use]
pub fn voltage_grid(node: TechNode) -> Vec<f64> {
    let mut v = 0.5;
    let mut out = Vec::new();
    while v <= node.nominal_vdd().get() + 1e-9 {
        out.push((v * 1000.0_f64).round() / 1000.0);
        v += 0.05;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voltage_grid_spans_to_nominal() {
        let g90 = voltage_grid(TechNode::Gp90);
        assert_eq!(g90.first(), Some(&0.5));
        assert_eq!(g90.last(), Some(&1.0));
        assert_eq!(g90.len(), 11);
        let g22 = voltage_grid(TechNode::PtmHp22);
        assert_eq!(g22.last(), Some(&0.8));
        assert_eq!(g22.len(), 7);
    }
}
