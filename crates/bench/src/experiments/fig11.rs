//! Fig 11 (Appendix C): delay variation (3σ/μ) at 0.55 V as a function of
//! the FO4 chain length, for all four nodes — showing the diminishing
//! returns of "just make the logic chains longer".

use ntv_circuit::chain::ChainMc;
use ntv_core::Executor;
use ntv_device::{TechModel, TechNode};
use ntv_mc::{CounterRng, Summary};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// Chain lengths swept (the paper's x-axis reaches a few hundred stages).
pub const CHAIN_LENGTHS: [usize; 9] = [1, 2, 5, 10, 20, 50, 100, 200, 400];

/// The study voltage.
pub const VDD: f64 = 0.55;

/// One node's curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Curve {
    /// Technology node.
    pub node: TechNode,
    /// `(chain length, 3σ/μ)` points.
    pub points: Vec<(usize, f64)>,
}

/// Full Fig 11 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Result {
    /// One curve per node, paper order.
    pub curves: Vec<Fig11Curve>,
}

/// Regenerate Fig 11 (all available cores).
#[must_use]
pub fn run(samples: usize, seed: u64) -> Fig11Result {
    run_with(samples, seed, Executor::default())
}

/// Regenerate Fig 11 on an explicit executor.
#[must_use]
pub fn run_with(samples: usize, seed: u64, exec: Executor) -> Fig11Result {
    let stream = CounterRng::new(seed, "fig11");
    let curves = TechNode::ALL
        .iter()
        .map(|&node| {
            let tech = TechModel::new(node);
            let points = CHAIN_LENGTHS
                .iter()
                .map(|&n| {
                    let chain = ChainMc::new(&tech, n);
                    // Budget the gate evaluations evenly across lengths.
                    let s = (samples * 50 / n).clamp(200, samples * 4);
                    let summary: Summary = exec
                        .map_indexed(s as u64, |i| chain.sample_ps(Volts(VDD), &mut stream.at(i)))
                        .into_iter()
                        .collect();
                    (n, summary.three_sigma_over_mu())
                })
                .collect();
            Fig11Curve { node, points }
        })
        .collect();
    Fig11Result { curves }
}

impl std::fmt::Display for Fig11Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig 11 — 3sigma/mu at {VDD} V vs chain length")?;
        let headers: Vec<String> = std::iter::once("N".to_owned())
            .chain(self.curves.iter().map(|c| c.node.to_string()))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = TextTable::new(&header_refs);
        for (i, &n) in CHAIN_LENGTHS.iter().enumerate() {
            let mut cells = vec![n.to_string()];
            for c in &self.curves {
                cells.push(format!("{:.1}%", c.points[i].1 * 100.0));
            }
            t.row(&cells);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variation_falls_with_diminishing_returns() {
        let r = run(800, 17);
        for c in &r.curves {
            // Broadly decreasing...
            let first = c.points[0].1;
            let mid = c.points[5].1; // N = 50
            let last = c.points[8].1; // N = 400
            assert!(mid < 0.6 * first, "{:?}: {first} -> {mid}", c.node);
            // ...but the systematic floor stops the 1/sqrt(N) decay: going
            // from 50 to 400 stages buys far less than 1->50 did.
            let early_gain = first - mid;
            let late_gain = mid - last;
            assert!(late_gain < 0.5 * early_gain, "{:?}", c.node);
            assert!(last > 0.0);
        }
    }

    #[test]
    fn node_ordering_holds_at_055v() {
        let r = run(800, 18);
        // At N = 50, 22nm is ~2.5x 90nm (paper §3.1).
        let at = |node: TechNode| {
            r.curves
                .iter()
                .find(|c| c.node == node)
                .expect("node present")
                .points[5]
                .1
        };
        let ratio = at(TechNode::PtmHp22) / at(TechNode::Gp90);
        assert!((1.8..3.4).contains(&ratio), "22nm/90nm ratio {ratio}");
    }
}
