//! Functional error-policy costs on the Diet SODA simulator (extension).
//!
//! The paper argues (§4) that per-operation recovery is uniquely painful
//! in wide SIMD — one bad lane stalls all 128 — while test-time spare
//! remapping removes faulty lanes for free at run time. This experiment
//! *runs* that argument: over a population of fabricated chips and a sweep
//! of clock aggressiveness, execute an FIR workload under each policy and
//! account cycles, energy, correctness and repairability.

use ntv_core::{DatapathConfig, DatapathEngine};
use ntv_device::{TechModel, TechNode};
use ntv_mc::{Quantiles, StreamRng};
use ntv_soda::kernels::{self, golden};
use ntv_soda::pe::ProcessingElement;
use ntv_soda::{ErrorPolicy, FaultModel};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// Spares fabricated alongside the 128 lanes.
pub const SPARES: usize = 8;

/// One (clock, policy) cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PolicyCell {
    /// Lane-delay quantile the clock was set at.
    pub clock_quantile: f64,
    /// Error-handling policy.
    pub policy: ErrorPolicy,
    /// Mean cycle overhead vs a fault-free run.
    pub cycle_overhead: f64,
    /// Mean energy overhead vs a fault-free run.
    pub energy_overhead: f64,
    /// Fraction of chips producing bit-exact results.
    pub correct_fraction: f64,
    /// Fraction of chips that could not be repaired (spare-remap only).
    pub unrepairable_fraction: f64,
}

/// Full policy study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicyResult {
    /// Technology node.
    pub node: TechNode,
    /// NTV operating voltage.
    pub vdd: f64,
    /// All cells, clock-major.
    pub cells: Vec<PolicyCell>,
}

fn workload(pe: &mut ProcessingElement) -> Vec<i16> {
    let signal: Vec<i16> = (0..256).map(|i| ((i * 31) % 157) as i16 - 78).collect();
    kernels::fir(pe, &signal, &[2, -3, 1, 4], 2).expect("fir runs")
}

fn golden_workload() -> Vec<i16> {
    let signal: Vec<i16> = (0..256).map(|i| ((i * 31) % 157) as i16 - 78).collect();
    golden::fir(&signal, &[2, -3, 1, 4], 2)
}

/// Run the policy study: `chips` fabricated chips per (clock, policy) cell.
#[must_use]
pub fn run(chips: usize, seed: u64) -> PolicyResult {
    let node = TechNode::Gp90;
    let vdd = 0.55;
    let tech = TechModel::new(node);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());

    // Baseline fault-free run.
    let mut clean = ProcessingElement::new();
    let golden_out = golden_workload();
    let clean_out = workload(&mut clean);
    assert_eq!(clean_out[..], golden_out[..clean_out.len()]);
    let clean_cycles = clean.stats().cycles as f64;
    let clean_energy = clean.stats().total_energy_pj();

    // Clock grid from the lane-delay distribution.
    let mut rng = StreamRng::from_seed_and_label(seed, "policy-lanes");
    let lane_q =
        Quantiles::from_samples(engine.sample_lane_delays_fo4(Volts(vdd), 4_000, &mut rng));
    let fo4_ns = engine.fo4_unit_ps(Volts(vdd)) / 1000.0;

    let mut cells = Vec::new();
    for &clock_quantile in &[0.95, 0.97, 0.999] {
        let t_clk_ns = lane_q.quantile(clock_quantile) * fo4_ns;
        for policy in [
            ErrorPolicy::Corrupt,
            ErrorPolicy::StallRetry,
            ErrorPolicy::SpareRemap,
        ] {
            let mut cycle_over = 0.0;
            let mut energy_over = 0.0;
            let mut correct = 0usize;
            let mut unrepairable = 0usize;
            let mut fab_rng = StreamRng::from_seed_and_label(seed, "policy-chips");
            for chip in 0..chips {
                let fault = FaultModel::from_engine(
                    &engine,
                    Volts(vdd),
                    t_clk_ns,
                    SPARES,
                    0.0,
                    &mut fab_rng,
                );
                let mut pe = ProcessingElement::new();
                pe.set_error_policy(policy);
                pe.set_fault_model(
                    fault,
                    StreamRng::from_seed_and_label(seed, &format!("policy-run-{chip}")),
                );
                if policy == ErrorPolicy::SpareRemap && pe.repair(0.5).is_err() {
                    unrepairable += 1;
                    continue;
                }
                let out = workload(&mut pe);
                cycle_over += pe.stats().cycles as f64 / clean_cycles - 1.0;
                energy_over += pe.stats().total_energy_pj() / clean_energy - 1.0;
                if out[..] == golden_out[..out.len()] {
                    correct += 1;
                }
            }
            let ran = (chips - unrepairable).max(1) as f64;
            cells.push(PolicyCell {
                clock_quantile,
                policy,
                cycle_overhead: cycle_over / ran,
                energy_overhead: energy_over / ran,
                correct_fraction: correct as f64 / ran,
                unrepairable_fraction: unrepairable as f64 / chips as f64,
            });
        }
    }
    PolicyResult { node, vdd, cells }
}

impl PolicyResult {
    /// The cell for a quantile/policy pair, if computed.
    #[must_use]
    pub fn cell(&self, clock_quantile: f64, policy: ErrorPolicy) -> Option<&PolicyCell> {
        self.cells
            .iter()
            .find(|c| (c.clock_quantile - clock_quantile).abs() < 1e-9 && c.policy == policy)
    }
}

impl std::fmt::Display for PolicyResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Extension — error-policy costs on the PE simulator, {} @{:.2} V ({} spares)",
            self.node, self.vdd, SPARES
        )?;
        let mut t = TextTable::new(&[
            "clock q",
            "policy",
            "cycle ovhd",
            "energy ovhd",
            "correct",
            "unrepairable",
        ]);
        for c in &self.cells {
            t.row(&[
                format!("{:.3}", c.clock_quantile),
                c.policy.to_string(),
                format!("{:+.1}%", c.cycle_overhead * 100.0),
                format!("{:+.1}%", c.energy_overhead * 100.0),
                format!("{:.0}%", c.correct_fraction * 100.0),
                format!("{:.0}%", c.unrepairable_fraction * 100.0),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_economics_match_section_4() {
        let r = run(10, 50);
        // Aggressive clock (q0.95, ~6-7 faulty lanes per chip): remap stays
        // free and correct; retry is correct but pays heavily; corrupt pays
        // nothing and is wrong.
        let corrupt = r.cell(0.95, ErrorPolicy::Corrupt).expect("cell");
        let retry = r.cell(0.95, ErrorPolicy::StallRetry).expect("cell");
        let remap = r.cell(0.95, ErrorPolicy::SpareRemap).expect("cell");

        assert!(corrupt.correct_fraction < 0.5, "{corrupt:?}");
        assert!(corrupt.cycle_overhead.abs() < 1e-9);

        assert!((retry.correct_fraction - 1.0).abs() < 1e-9, "{retry:?}");
        assert!(retry.cycle_overhead > 0.5, "{retry:?}");
        assert!(retry.energy_overhead > 0.05, "{retry:?}");

        assert!(remap.correct_fraction > 0.99, "{remap:?}");
        assert!(remap.cycle_overhead.abs() < 1e-9, "{remap:?}");
        // At q0.95 some chips exceed 8 faulty lanes; a few may be
        // unrepairable, but most must survive.
        assert!(remap.unrepairable_fraction < 0.7, "{remap:?}");
    }

    #[test]
    fn conservative_clock_quiets_everything() {
        // At q0.999 a chip still has ~12.7 % odds of one faulty lane
        // (1 - 0.999^136), so a handful of chips cannot support a 0.7
        // correct-fraction bound — 8 chips fail it with ~5 % probability
        // per seed. 48 chips put the expected clean fraction (~0.87)
        // more than four sigma above the bound.
        let r = run(48, 51);
        for policy in [
            ErrorPolicy::Corrupt,
            ErrorPolicy::StallRetry,
            ErrorPolicy::SpareRemap,
        ] {
            let c = r.cell(0.999, policy).expect("cell");
            assert!(c.correct_fraction > 0.7, "{c:?}");
            // A rare faulty chip replays every FU op; averaged over the
            // population the overhead stays below one clean run.
            assert!(c.cycle_overhead < 0.9, "{c:?}");
        }
    }

    #[test]
    fn display_has_one_row_per_cell() {
        let r = run(4, 52);
        let text = r.to_string();
        assert_eq!(text.lines().count(), 2 + r.cells.len() + 1);
        assert!(text.contains("stall-retry"));
    }
}
