//! Fig 9 (Appendix A): energy and delay vs supply voltage — the
//! super-threshold / near-threshold / sub-threshold regions and the
//! sub-threshold energy minimum.

use ntv_device::energy::{EnergyModel, EnergyPoint};
use ntv_device::{TechModel, TechNode};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// Full Fig 9 result for one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Result {
    /// Technology node (the paper's figure is generic; 90 nm is shown).
    pub node: TechNode,
    /// Energy/delay sweep, ascending voltage.
    pub sweep: Vec<EnergyPoint>,
    /// The minimum-energy operating point.
    pub minimum: EnergyPoint,
    /// Energy ratio nominal / NTV (the "~10x energy reduction").
    pub energy_saving_at_ntv: f64,
    /// Delay ratio NTV / nominal (the "~10x performance cost").
    pub slowdown_at_ntv: f64,
    /// Energy ratio NTV / minimum (the "only 2x above the minimum").
    pub energy_vs_minimum: f64,
    /// Speedup of NTV over the minimum-energy point.
    pub speedup_vs_minimum: f64,
}

/// The NTV voltage used for the headline ratios.
pub const NTV_POINT: f64 = 0.5;

/// Regenerate Fig 9 for a node.
#[must_use]
pub fn run_for(node: TechNode) -> Fig9Result {
    let tech = TechModel::new(node);
    let energy = EnergyModel::new(&tech);
    let sweep = energy.sweep(Volts(0.15), tech.nominal_vdd(), 35);
    let minimum = energy.minimum_energy_point();
    let ntv = energy.point(Volts(NTV_POINT));
    let nominal = energy.point(tech.nominal_vdd());
    Fig9Result {
        node,
        sweep,
        minimum,
        energy_saving_at_ntv: nominal.total_fj / ntv.total_fj,
        slowdown_at_ntv: ntv.delay_ns / nominal.delay_ns,
        energy_vs_minimum: ntv.total_fj / minimum.total_fj,
        speedup_vs_minimum: minimum.delay_ns / ntv.delay_ns,
    }
}

/// Regenerate Fig 9 for the paper's representative 90 nm node.
#[must_use]
pub fn run() -> Fig9Result {
    run_for(TechNode::Gp90)
}

impl std::fmt::Display for Fig9Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tech = TechModel::new(self.node);
        writeln!(f, "Fig 9 — energy/delay vs Vdd, {}", self.node)?;
        let mut t = TextTable::new(&[
            "Vdd (V)",
            "region",
            "E_sw (fJ)",
            "E_leak (fJ)",
            "E_total (fJ)",
            "delay (ns)",
        ]);
        for p in &self.sweep {
            t.row(&[
                format!("{:.2}", p.vdd.get()),
                tech.region(p.vdd).to_string(),
                format!("{:.1}", p.switching_fj),
                format!("{:.2}", p.leakage_fj),
                format!("{:.1}", p.total_fj),
                format!("{:.2}", p.delay_ns),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "minimum energy: {:.1} fJ at {:.2} V ({})",
            self.minimum.total_fj,
            self.minimum.vdd.get(),
            tech.region(self.minimum.vdd)
        )?;
        writeln!(
            f,
            "NTV (0.5 V) vs nominal: {:.1}x less energy at {:.1}x the delay",
            self.energy_saving_at_ntv, self.slowdown_at_ntv
        )?;
        writeln!(
            f,
            "NTV vs minimum-energy point: {:.1}x energy for {:.1}x speedup",
            self.energy_vs_minimum, self.speedup_vs_minimum
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ntv_device::OperatingRegion;

    #[test]
    fn region_structure_matches_paper() {
        for node in TechNode::ALL {
            let r = run_for(node);
            let tech = TechModel::new(node);
            // Minimum lies in the sub-threshold region.
            assert_eq!(
                tech.region(r.minimum.vdd),
                OperatingRegion::SubThreshold,
                "{node}"
            );
            // NTV trades a modest energy increase over the minimum for a
            // large speedup (paper: ~2x energy for ~10x performance).
            assert!(
                r.energy_vs_minimum > 1.0 && r.energy_vs_minimum < 4.0,
                "{node}: {r:?}"
            );
            assert!(r.speedup_vs_minimum > 4.0, "{node}");
            // And saves substantial energy vs nominal at a large delay cost.
            assert!(r.energy_saving_at_ntv > 2.0, "{node}");
            assert!(r.slowdown_at_ntv > 3.0, "{node}");
        }
    }

    #[test]
    fn sweep_shows_energy_minimum_interior() {
        let r = run();
        let totals: Vec<f64> = r.sweep.iter().map(|p| p.total_fj).collect();
        let min_idx = totals
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty");
        assert!(
            min_idx > 0 && min_idx < totals.len() - 1,
            "minimum is interior"
        );
    }

    #[test]
    fn display_reports_ratios() {
        let text = run().to_string();
        assert!(text.contains("minimum energy"));
        assert!(text.contains("NTV (0.5 V) vs nominal"));
    }
}
