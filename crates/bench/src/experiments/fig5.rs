//! Fig 5: delay distributions of SIMD duplicated systems
//! (128-wide + α spares) at 0.55 V in 90 nm GP, against the 128-wide @1 V
//! baseline whose 99 % point the duplication must match.

use ntv_core::duplication::DuplicationStudy;
use ntv_core::{ChipDelayDistribution, DatapathConfig, DatapathEngine, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_mc::CounterRng;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// One duplicated-system curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Curve {
    /// Number of spare lanes.
    pub spares: u32,
    /// Chip-delay distribution (FO4 units) of 128 used lanes out of
    /// `128 + spares`.
    pub distribution: ChipDelayDistribution,
}

/// Full Fig 5 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Result {
    /// NTV operating voltage.
    pub vdd: f64,
    /// Baseline 99 % point: 128-wide at nominal voltage (FO4 units).
    pub baseline_q99_fo4: f64,
    /// Curves for increasing spare counts.
    pub curves: Vec<Fig5Curve>,
    /// The spare count whose 99 % point first meets the baseline.
    pub matching_spares: Option<u32>,
}

/// Regenerate Fig 5 (all available cores).
#[must_use]
pub fn run(samples: usize, seed: u64) -> Fig5Result {
    run_with(samples, seed, Executor::default())
}

/// Regenerate Fig 5 on an explicit executor.
#[must_use]
pub fn run_with(samples: usize, seed: u64, exec: Executor) -> Fig5Result {
    let vdd = 0.55;
    let tech = TechModel::new(TechNode::Gp90);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    let study = DuplicationStudy::new(&engine).with_executor(exec);

    let stream = CounterRng::new(seed, "fig5-baseline");
    let baseline = engine
        .chip_delay_distribution_par(tech.nominal_vdd(), samples, &stream, exec)
        .q99_fo4();

    let matrix = study.sample_matrix(Volts(vdd), 32, samples, seed);
    let spare_counts = [0u32, 2, 4, 6, 10, 16, 32];
    let curves: Vec<Fig5Curve> = spare_counts
        .iter()
        .map(|&spares| Fig5Curve {
            spares,
            distribution: matrix.chip_delay_with_spares(128, spares),
        })
        .collect();
    let matching_spares = study.required_spares(&matrix, baseline).ok();

    Fig5Result {
        vdd,
        baseline_q99_fo4: baseline,
        curves,
        matching_spares,
    }
}

impl std::fmt::Display for Fig5Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 5 — duplicated systems (128-wide + alpha spares) @{:.2} V, 90nm GP",
            self.vdd
        )?;
        writeln!(
            f,
            "baseline (128-wide @1V) q99 = {:.2} FO4; matching spares = {} (paper: 6)",
            self.baseline_q99_fo4,
            self.matching_spares
                .map_or_else(|| ">32".to_owned(), |s| s.to_string())
        )?;
        let mut t = TextTable::new(&["spares", "median", "q99", "q99 - baseline"]);
        for c in &self.curves {
            let q = &c.distribution.fo4_quantiles;
            t.row(&[
                c.spares.to_string(),
                format!("{:.2}", q.median()),
                format!("{:.2}", q.q99()),
                format!("{:+.2}", q.q99() - self.baseline_q99_fo4),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spares_shift_left_and_match_baseline() {
        let r = run(3000, 9);
        // q99 monotone decreasing with spares.
        for w in r.curves.windows(2) {
            assert!(w[1].distribution.q99_fo4() <= w[0].distribution.q99_fo4() + 1e-9);
        }
        // Paper needs 6 spares; accept 3..=14.
        let m = r.matching_spares.expect("matchable at 0.55 V");
        assert!((3..=14).contains(&m), "matching spares {m}");
        // The spread also tightens (Fig 5's visual).
        let spread =
            |c: &Fig5Curve| c.distribution.quantile_fo4(0.99) - c.distribution.quantile_fo4(0.01);
        assert!(spread(r.curves.last().expect("curves")) < spread(&r.curves[0]));
    }

    #[test]
    fn display_mentions_baseline() {
        let text = run(500, 10).to_string();
        assert!(text.contains("baseline"));
        assert!(text.contains("spares"));
    }
}
