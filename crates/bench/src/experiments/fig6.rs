//! Fig 6: delay distributions of the 128-wide datapath at 600–620 mV, and
//! of duplicated systems at 600 mV, against the target delay — 45 nm GP.
//!
//! This is the figure that motivates combining the two techniques: moving
//! up the voltage ladder or along the spare axis both walk the 99 % point
//! toward the target.

use ntv_core::duplication::DuplicationStudy;
use ntv_core::margining::MarginStudy;
use ntv_core::{ChipDelayDistribution, DatapathConfig, DatapathEngine, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_mc::CounterRng;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// A labelled distribution of Fig 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Curve {
    /// Legend label.
    pub label: String,
    /// 99 % chip delay in nanoseconds.
    pub q99_ns: f64,
    /// The distribution itself (FO4 units at its own voltage).
    pub distribution: ChipDelayDistribution,
}

/// Full Fig 6 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Base NTV voltage (0.6 V).
    pub vdd: f64,
    /// Target delay (ns) per §4.2's normalization.
    pub target_ns: f64,
    /// Voltage-margin curves (600–620 mV).
    pub voltage_curves: Vec<Fig6Curve>,
    /// Duplication curves at 600 mV.
    pub spare_curves: Vec<Fig6Curve>,
}

/// Regenerate Fig 6 (all available cores).
#[must_use]
pub fn run(samples: usize, seed: u64) -> Fig6Result {
    run_with(samples, seed, Executor::default())
}

/// Regenerate Fig 6 on an explicit executor.
///
/// All five voltage-margin curves share one index-addressed stream, so
/// they walk the *same* chips up the voltage ladder (common random
/// numbers) — exactly the paper's framing of margining.
#[must_use]
pub fn run_with(samples: usize, seed: u64, exec: Executor) -> Fig6Result {
    let vdd = 0.60;
    let tech = TechModel::new(TechNode::Gp45);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    let margin_study = MarginStudy::new(&engine).with_executor(exec);
    let target_ns = margin_study.target_delay_ns(Volts(vdd), samples, seed);

    let stream = CounterRng::new(seed, "fig6-v");
    let mut voltage_curves = Vec::new();
    for step in 0..5 {
        let v = vdd + f64::from(step) * 0.005;
        let distribution = engine.chip_delay_distribution_par(Volts(v), samples, &stream, exec);
        voltage_curves.push(Fig6Curve {
            label: format!("128-wide @{:.0} mV", v * 1000.0),
            q99_ns: distribution.q99_ns(),
            distribution,
        });
    }

    let dup_study = DuplicationStudy::new(&engine).with_executor(exec);
    let matrix = dup_study.sample_matrix(Volts(vdd), 32, samples, seed);
    let spare_curves = [0u32, 4, 8, 16, 32]
        .iter()
        .map(|&spares| {
            let distribution = matrix.chip_delay_with_spares(128, spares);
            Fig6Curve {
                label: format!("128+{spares}-spare @600 mV"),
                q99_ns: distribution.q99_ns(),
                distribution,
            }
        })
        .collect();

    Fig6Result {
        vdd,
        target_ns,
        voltage_curves,
        spare_curves,
    }
}

impl std::fmt::Display for Fig6Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 6 — 45nm GP, 128-wide @600 mV; target delay = {:.3} ns",
            self.target_ns
        )?;
        let mut t = TextTable::new(&["curve", "q99 (ns)", "meets target"]);
        for c in self.voltage_curves.iter().chain(&self.spare_curves) {
            t.row(&[
                c.label.clone(),
                format!("{:.3}", c.q99_ns),
                if c.q99_ns <= self.target_ns {
                    "yes"
                } else {
                    "no"
                }
                .to_owned(),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walking_either_axis_approaches_target() {
        let r = run(2500, 11);
        // Monotone decreasing q99 along both axes.
        for w in r.voltage_curves.windows(2) {
            assert!(w[1].q99_ns < w[0].q99_ns);
        }
        for w in r.spare_curves.windows(2) {
            assert!(w[1].q99_ns <= w[0].q99_ns + 1e-9);
        }
        // The unmitigated system misses the target; the top of the voltage
        // ladder meets it (paper: 615 mV suffices).
        assert!(r.voltage_curves[0].q99_ns > r.target_ns);
        assert!(r.voltage_curves.last().expect("curves").q99_ns <= r.target_ns);
    }

    #[test]
    fn display_shows_target() {
        let text = run(400, 12).to_string();
        assert!(text.contains("target delay"));
        assert!(text.contains("615 mV"));
    }
}
