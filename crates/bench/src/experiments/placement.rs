//! Fig 12 / Appendix D: global vs local spare placement, and the XRAM
//! bypass demonstration.
//!
//! Local sparing (Synctium-style, one spare per 4-lane cluster) cannot
//! cover two faults in one cluster; a global pool behind the XRAM crossbar
//! covers any pattern up to the spare count. This experiment computes both
//! repair probabilities across lane-failure rates and runs the functional
//! bypass on the Diet SODA simulator.

use ntv_core::placement::{repair_probability, SparePlacement};
use ntv_mc::StreamRng;
use ntv_soda::isa::{Instr, VBinOp, VReg};
use ntv_soda::{ErrorPolicy, FaultModel, ProcessingElement, SIMD_WIDTH};
use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// One failure-rate row of the comparison.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlacementRow {
    /// Per-lane failure probability.
    pub p_fail: f64,
    /// Repair probability with local sparing (1 spare per 4-lane cluster).
    pub local: f64,
    /// Repair probability with a global pool of the same 32 spares.
    pub global: f64,
}

/// Result of the functional XRAM bypass demo.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BypassDemo {
    /// Physical lanes fabricated (128 + spares).
    pub physical_lanes: usize,
    /// Faulty physical lanes found at test time.
    pub faulty: Vec<usize>,
    /// Whether repair succeeded.
    pub repaired: bool,
    /// Whether the kernel output was bit-exact after repair.
    pub output_correct: bool,
}

/// Full placement study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacementResult {
    /// Analytic comparison rows.
    pub rows: Vec<PlacementRow>,
    /// Functional demonstration on the PE simulator.
    pub demo: BypassDemo,
}

/// Regenerate the placement study.
#[must_use]
pub fn run(seed: u64) -> PlacementResult {
    let local = SparePlacement::Local {
        cluster_size: 4,
        spares_per_cluster: 1,
    };
    let global = SparePlacement::Global { spares: 32 };
    let rows = [0.005, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2]
        .iter()
        .map(|&p_fail| PlacementRow {
            p_fail,
            local: repair_probability(local, 128, p_fail),
            global: repair_probability(global, 128, p_fail),
        })
        .collect();

    // Functional demo: 128+8 physical lanes, a burst of adjacent faults
    // (which defeats 1-of-4 local sparing), repaired via the XRAM map.
    let spares = 8usize;
    let mut probs = vec![0.0; SIMD_WIDTH + spares];
    let faulty = vec![40, 41, 42, 77, 100];
    for &l in &faulty {
        probs[l] = 1.0;
    }
    let mut pe = ProcessingElement::new();
    pe.set_error_policy(ErrorPolicy::SpareRemap);
    pe.set_fault_model(
        FaultModel::from_probabilities(probs),
        StreamRng::from_seed_and_label(seed, "placement-demo"),
    );
    let repaired = pe.repair(0.5).is_ok();

    let (v0, v1, v2) = (VReg::new(0), VReg::new(1), VReg::new(2));
    let a: Vec<i16> = (0..SIMD_WIDTH as i16).collect();
    let b: Vec<i16> = (0..SIMD_WIDTH as i16).map(|i| 3 * i).collect();
    pe.set_vreg(v0, &a);
    pe.set_vreg(v1, &b);
    let output_correct = pe
        .execute(&Instr::VBin {
            op: VBinOp::Add,
            vd: v2,
            va: v0,
            vb: v1,
        })
        .is_ok()
        && pe
            .vreg(v2)
            .iter()
            .zip(a.iter().zip(&b))
            .all(|(&got, (&x, &y))| got == x.saturating_add(y));

    PlacementResult {
        rows,
        demo: BypassDemo {
            physical_lanes: SIMD_WIDTH + spares,
            faulty,
            repaired,
            output_correct,
        },
    }
}

impl std::fmt::Display for PlacementResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Appendix D — spare placement: repair probability, 128 lanes, 32 spares"
        )?;
        let mut t = TextTable::new(&["p_fail", "local (1 per 4)", "global pool"]);
        for r in &self.rows {
            t.row(&[
                format!("{:.3}", r.p_fail),
                format!("{:.4}", r.local),
                format!("{:.4}", r.global),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "XRAM bypass demo: {} physical lanes, faulty {:?} -> repaired: {}, output correct: {}",
            self.demo.physical_lanes,
            self.demo.faulty,
            self.demo.repaired,
            self.demo.output_correct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_dominates_local_everywhere() {
        let r = run(33);
        for row in &r.rows {
            assert!(
                row.global >= row.local,
                "p={}: global {} < local {}",
                row.p_fail,
                row.global,
                row.local
            );
        }
        // At moderate failure rates the gap is decisive.
        let mid = r
            .rows
            .iter()
            .find(|r| (r.p_fail - 0.05).abs() < 1e-9)
            .expect("row");
        assert!(mid.global > mid.local + 0.2, "{mid:?}");
    }

    #[test]
    fn burst_faults_are_repaired_and_correct() {
        let r = run(34);
        assert!(r.demo.repaired);
        assert!(r.demo.output_correct);
        // The demo burst includes 3 adjacent faults, which a 1-per-4
        // cluster scheme could not absorb.
        assert!(r.demo.faulty.windows(3).any(|w| w[2] - w[0] == 2));
    }
}
