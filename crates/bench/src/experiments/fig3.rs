//! Fig 3: delay distributions (FO4 units) for a single critical path at
//! 1 V, a 1-wide SIMD lane at 1 V, and the 128-wide datapath at 1.0, 0.6,
//! 0.55 and 0.5 V — 90 nm GP, 10 000 samples per curve.

use ntv_core::{ChipDelayDistribution, DatapathConfig, DatapathEngine, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_mc::CounterRng;
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// One curve of Fig 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Curve {
    /// Curve label as in the paper's legend.
    pub label: String,
    /// The sampled distribution (FO4 units).
    pub distribution: ChipDelayDistribution,
}

/// Full Fig 3 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3Result {
    /// Curves in the paper's legend order.
    pub curves: Vec<Fig3Curve>,
}

/// Regenerate Fig 3 (all available cores).
#[must_use]
pub fn run(samples: usize, seed: u64) -> Fig3Result {
    run_with(samples, seed, Executor::default())
}

/// Regenerate Fig 3 on an explicit executor.
///
/// Each curve owns a labelled counter stream; the four 128-wide curves
/// share one stream so the same chips are re-evaluated at every voltage
/// (common random numbers).
#[must_use]
pub fn run_with(samples: usize, seed: u64, exec: Executor) -> Fig3Result {
    let tech = TechModel::new(TechNode::Gp90);
    let full = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    let one_lane = DatapathEngine::new(&tech, DatapathConfig::new(1, 100, 50));
    let base = CounterRng::new(seed, "fig3");

    let mut curves = Vec::new();
    curves.push(Fig3Curve {
        label: "critical path @1V".to_owned(),
        distribution: full.path_delay_distribution_par(
            Volts(1.0),
            samples,
            &base.stream("path"),
            exec,
        ),
    });
    curves.push(Fig3Curve {
        label: "1-wide @1V".to_owned(),
        distribution: one_lane.chip_delay_distribution_par(
            Volts(1.0),
            samples,
            &base.stream("1wide"),
            exec,
        ),
    });
    let wide = base.stream("128wide");
    for vdd in [1.0, 0.6, 0.55, 0.5] {
        curves.push(Fig3Curve {
            label: format!("128-wide @{vdd:.2}V"),
            distribution: full.chip_delay_distribution_par(Volts(vdd), samples, &wide, exec),
        });
    }
    Fig3Result { curves }
}

impl std::fmt::Display for Fig3Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Fig 3 — delay distributions in FO4 units, 90nm GP")?;
        let mut t = TextTable::new(&["curve", "median", "q99", "min", "max"]);
        for c in &self.curves {
            let q = &c.distribution.fo4_quantiles;
            t.row(&[
                c.label.clone(),
                format!("{:.2}", q.median()),
                format!("{:.2}", q.q99()),
                format!("{:.2}", q.min()),
                format!("{:.2}", q.max()),
            ]);
        }
        writeln!(f, "{t}")?;
        for c in &self.curves {
            writeln!(f, "{} (FO4 units):", c.label)?;
            writeln!(f, "{}", c.distribution.histogram(30).render_ascii(40))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_order_as_in_paper() {
        let r = run(1500, 5);
        assert_eq!(r.curves.len(), 6);
        let median = |i: usize| r.curves[i].distribution.fo4_quantiles.median();
        // Path@1V < 1-wide@1V < 128-wide@1V (max statistics shift right).
        assert!(median(0) < median(1));
        assert!(median(1) < median(2));
        // 128-wide curves drift right as voltage drops.
        assert!(median(2) < median(3)); // 1.0V < 0.6V
        assert!(median(3) < median(4)); // 0.6V < 0.55V
        assert!(median(4) < median(5)); // 0.55V < 0.5V
                                        // The critical path centres near 50 FO4.
        assert!((median(0) - 50.0).abs() < 1.5);
    }

    #[test]
    fn display_lists_every_curve() {
        let text = run(300, 6).to_string();
        assert!(text.contains("critical path @1V"));
        assert!(text.contains("128-wide @0.50V"));
    }
}
