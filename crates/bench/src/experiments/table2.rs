//! Table 2: required voltage margin and power overhead for the four nodes
//! at 0.50–0.70 V.
//!
//! Solved on the analytic quantile path (exact order statistics, no MC
//! noise); `samples`/`seed` are accepted for interface uniformity but do
//! not affect the result.

use ntv_core::margining::{MarginSolution, MarginStudy};
use ntv_core::{DatapathConfig, DatapathEngine, Evaluation, Executor};
use ntv_device::calib;
use ntv_device::{TechModel, TechNode};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::experiments::TABLE_VOLTAGES;
use crate::table::TextTable;

/// One Table 2 cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table2Cell {
    /// Technology node.
    pub node: TechNode,
    /// The solved margin.
    pub solution: MarginSolution,
    /// The paper's margin in volts, for side-by-side reporting.
    pub paper_margin: f64,
}

/// Full Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Result {
    /// Cells in node-major order.
    pub cells: Vec<Table2Cell>,
}

impl Table2Result {
    /// The cell for a node/voltage, if computed.
    #[must_use]
    pub fn cell(&self, node: TechNode, vdd: f64) -> Option<&Table2Cell> {
        self.cells
            .iter()
            .find(|c| c.node == node && (c.solution.vdd.get() - vdd).abs() < 1e-9)
    }
}

/// Regenerate Table 2 (all available cores).
#[must_use]
pub fn run(samples: usize, seed: u64) -> Table2Result {
    run_with(samples, seed, Executor::default())
}

/// Regenerate Table 2 on an explicit executor.
#[must_use]
pub fn run_with(samples: usize, seed: u64, exec: Executor) -> Table2Result {
    let mut cells = Vec::new();
    for &node in &TechNode::ALL {
        let tech = TechModel::new(node);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        engine.prefetch(&TABLE_VOLTAGES.map(Volts), exec);
        let study = MarginStudy::new(&engine)
            .with_executor(exec)
            .with_evaluation(Evaluation::Analytic);
        for (row, &vdd) in TABLE_VOLTAGES.iter().enumerate() {
            let solution = study.solve(Volts(vdd), samples, seed);
            let paper_margin = calib::TABLE2_MARGIN_MV[row].1[calib::node_index(node)] / 1000.0;
            cells.push(Table2Cell {
                node,
                solution,
                paper_margin,
            });
        }
    }
    Table2Result { cells }
}

impl std::fmt::Display for Table2Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 2 — required voltage margin (final supply = Vdd + margin)"
        )?;
        let mut t = TextTable::new(&[
            "node",
            "Vdd (V)",
            "margin (model)",
            "margin (paper)",
            "power ovhd",
        ]);
        for c in &self.cells {
            t.row(&[
                c.node.to_string(),
                format!("{:.2}", c.solution.vdd.get()),
                format!("{:.1} mV", c.solution.margin.get() * 1000.0),
                format!("{:.1} mV", c.paper_margin * 1000.0),
                format!("{:.1}%", c.solution.power_overhead * 100.0),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn margins_match_paper_scale() {
        let r = run(3000, 23);
        for c in &r.cells {
            let got_mv = c.solution.margin.get() * 1000.0;
            let paper_mv = c.paper_margin * 1000.0;
            assert!(
                got_mv > 0.3 * paper_mv && got_mv < 2.5 * paper_mv,
                "{} @{:.2} V: {got_mv:.1} mV vs paper {paper_mv} mV",
                c.node,
                c.solution.vdd.get()
            );
        }
    }

    #[test]
    fn margins_shrink_with_voltage_within_a_node() {
        let r = run(2000, 24);
        for node in TechNode::ALL {
            let series: Vec<f64> = TABLE_VOLTAGES
                .iter()
                .map(|&v| r.cell(node, v).expect("cell").solution.margin.get())
                .collect();
            assert!(
                series[0] > series[4],
                "{node}: margin at 0.5 V should exceed 0.7 V ({series:?})"
            );
        }
    }

    #[test]
    fn node_ordering_matches_paper() {
        // Table 2 @0.5 V: 90nm smallest; 45nm above 32nm.
        let r = run(2500, 25);
        let m = |n: TechNode| r.cell(n, 0.5).expect("cell").solution.margin;
        assert!(m(TechNode::Gp90) < m(TechNode::PtmHp32));
        assert!(m(TechNode::PtmHp32) < m(TechNode::Gp45));
    }

    #[test]
    fn power_overheads_are_percent_scale() {
        let r = run(1500, 26);
        for c in &r.cells {
            assert!(
                c.solution.power_overhead > 0.0 && c.solution.power_overhead < 0.08,
                "{:?}",
                c
            );
        }
    }
}
