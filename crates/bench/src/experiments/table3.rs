//! Table 3: combined duplication + voltage-margin design choices for a
//! 128-wide system at 600 mV in 45 nm, and the minimum-power combination.
//!
//! Solved on the analytic quantile path (exact order statistics, no MC
//! noise); `samples`/`seed` are accepted for interface uniformity but do
//! not affect the result.

use ntv_core::dse::{DesignChoice, DseStudy};
use ntv_core::{DatapathConfig, DatapathEngine, Evaluation, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// Spare-count candidates (the paper prints 26, 8, 2, 1, 0).
pub const SPARE_CANDIDATES: [u32; 7] = [0, 1, 2, 4, 8, 16, 26];

/// Full Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Result {
    /// Operating voltage (0.6 V).
    pub vdd: f64,
    /// Explored design choices, ascending spare count.
    pub choices: Vec<DesignChoice>,
    /// The cheapest choice.
    pub best: DesignChoice,
}

/// Regenerate Table 3 (all available cores).
#[must_use]
pub fn run(samples: usize, seed: u64) -> Table3Result {
    run_with(samples, seed, Executor::default())
}

/// Regenerate Table 3 on an explicit executor.
#[must_use]
pub fn run_with(samples: usize, seed: u64, exec: Executor) -> Table3Result {
    let vdd = 0.60;
    let tech = TechModel::new(TechNode::Gp45);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    let dse = DseStudy::new(&engine)
        .with_executor(exec)
        .with_evaluation(Evaluation::Analytic);
    let choices = dse.explore(Volts(vdd), &SPARE_CANDIDATES, samples, seed);
    let best = DseStudy::best(&choices);
    Table3Result { vdd, choices, best }
}

impl std::fmt::Display for Table3Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 3 — design choices for 128-wide @{:.0} mV, 45nm GP",
            self.vdd * 1000.0
        )?;
        writeln!(
            f,
            "(paper: 26+0mV=4.3%, 8+5mV=2.0%, 2+10mV=1.7% best, 1+15mV=2.3%, 0+17mV=2.4%)"
        )?;
        let mut t = TextTable::new(&["spares", "margin", "power ovhd", "best"]);
        for c in &self.choices {
            t.row(&[
                c.spares.to_string(),
                format!("{:.1} mV", c.margin.get() * 1000.0),
                format!("{:.2}%", c.power_overhead * 100.0),
                if c.spares == self.best.spares {
                    "<-"
                } else {
                    ""
                }
                .to_owned(),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combination_wins_as_in_paper() {
        let r = run(2000, 27);
        // The optimum is an interior combination: some spares plus a small
        // residual margin beats both extremes.
        assert!(r.best.spares > 0 && r.best.spares < 26, "{:?}", r.best);
        assert!(r.best.margin > Volts::ZERO);
        let margin_only = &r.choices[0];
        let dup_heavy = r.choices.last().expect("non-empty");
        assert!(r.best.power_overhead < margin_only.power_overhead);
        assert!(r.best.power_overhead < dup_heavy.power_overhead);
        // Scale check vs the paper's 1.7% / 2.4% / 4.3% row values.
        assert!(
            r.best.power_overhead > 0.005 && r.best.power_overhead < 0.035,
            "{:?}",
            r.best
        );
        assert!(margin_only.power_overhead > 0.01 && margin_only.power_overhead < 0.05);
    }

    #[test]
    fn margins_fall_as_spares_rise() {
        let r = run(1500, 28);
        for w in r.choices.windows(2) {
            assert!(w[1].margin <= w[0].margin + Volts(2e-4), "{:?}", r.choices);
        }
    }

    #[test]
    fn display_flags_the_best_choice() {
        let text = run(800, 29).to_string();
        assert!(text.contains("<-"));
        assert!(text.contains("design choices"));
    }
}
