//! Table 4 (Appendix E): frequency margining — designed vs
//! variation-aware clock period and the resulting throughput loss, for the
//! four nodes at 0.50–0.70 V.

use ntv_core::frequency::{frequency_margining, FrequencyRow};
use ntv_core::{DatapathConfig, DatapathEngine, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::experiments::TABLE_VOLTAGES;
use crate::table::TextTable;

/// One Table 4 cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Table4Cell {
    /// Technology node.
    pub node: TechNode,
    /// The frequency-margining row.
    pub row: FrequencyRow,
}

/// Full Table 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Result {
    /// Cells in node-major order.
    pub cells: Vec<Table4Cell>,
}

impl Table4Result {
    /// The cell for a node/voltage, if computed.
    #[must_use]
    pub fn cell(&self, node: TechNode, vdd: f64) -> Option<&Table4Cell> {
        self.cells
            .iter()
            .find(|c| c.node == node && (c.row.vdd.get() - vdd).abs() < 1e-9)
    }
}

/// Regenerate Table 4 (all available cores).
#[must_use]
pub fn run(samples: usize, seed: u64) -> Table4Result {
    run_with(samples, seed, Executor::default())
}

/// Regenerate Table 4 on an explicit executor.
#[must_use]
pub fn run_with(samples: usize, seed: u64, exec: Executor) -> Table4Result {
    let mut cells = Vec::new();
    for &node in &TechNode::ALL {
        let tech = TechModel::new(node);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        for &vdd in &TABLE_VOLTAGES {
            cells.push(Table4Cell {
                node,
                row: frequency_margining(&engine, Volts(vdd), samples, seed, exec),
            });
        }
    }
    Table4Result { cells }
}

impl std::fmt::Display for Table4Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Table 4 — frequency margining (variation-aware clock period)"
        )?;
        let mut t = TextTable::new(&["node", "Vdd (V)", "Tclk (ns)", "Tva-clk (ns)", "perf drop"]);
        for c in &self.cells {
            t.row(&[
                c.node.to_string(),
                format!("{:.2}", c.row.vdd.get()),
                format!("{:.2}", c.row.t_clk_ns),
                format!("{:.2}", c.row.t_va_clk_ns),
                format!("{:.1}%", c.row.perf_drop * 100.0),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variation_aware_clock_is_slower() {
        let r = run(2500, 30);
        for c in &r.cells {
            assert!(c.row.t_va_clk_ns > c.row.t_clk_ns, "{c:?}");
            assert!(c.row.perf_drop > 0.0);
        }
    }

    #[test]
    fn advanced_nodes_approach_twenty_percent() {
        // Appendix E: "required delay margins reach almost 20%", making
        // frequency margining unattractive at scaled nodes.
        let r = run(2500, 31);
        let d22 = r.cell(TechNode::PtmHp22, 0.5).expect("cell").row.perf_drop;
        assert!((0.12..0.30).contains(&d22), "{d22}");
        let d90 = r.cell(TechNode::Gp90, 0.5).expect("cell").row.perf_drop;
        assert!(d90 < 0.10, "{d90}");
    }

    #[test]
    fn clock_periods_scale_with_voltage_and_node() {
        let r = run(1500, 32);
        // Within a node, lower voltage -> longer clock.
        for node in TechNode::ALL {
            let t05 = r.cell(node, 0.5).expect("cell").row.t_clk_ns;
            let t07 = r.cell(node, 0.7).expect("cell").row.t_clk_ns;
            assert!(t05 > 2.0 * t07, "{node}: {t05} vs {t07}");
        }
        // At a fixed voltage, newer nodes are faster.
        let t90 = r.cell(TechNode::Gp90, 0.6).expect("cell").row.t_clk_ns;
        let t22 = r.cell(TechNode::PtmHp22, 0.6).expect("cell").row.t_clk_ns;
        assert!(t22 < t90);
    }
}
