//! Fig 8: 99 % chip delays for the 128-wide datapath at 600–620 mV and
//! for duplicated systems at 600 mV, against the target delay — 45 nm GP.
//!
//! The paper reads two equivalent fixes off this plot: (2 spares + 10 mV)
//! or (8 spares + 5 mV); Table 3 then prices them.

use ntv_core::dse::DseStudy;
use ntv_core::margining::MarginStudy;
use ntv_core::{DatapathConfig, DatapathEngine, Evaluation, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_units::Volts;
use serde::{Deserialize, Serialize};

use crate::table::TextTable;

/// Full Fig 8 result: q99 chip delay on a (margin, spares) grid.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Base NTV voltage (0.6 V).
    pub vdd: f64,
    /// Target delay (ns).
    pub target_ns: f64,
    /// `(margin_mv, spares, q99_ns)` grid points.
    pub grid: Vec<(f64, u32, f64)>,
}

impl Fig8Result {
    /// The grid value at a (margin, spares) point, if computed.
    #[must_use]
    pub fn q99_ns(&self, margin_mv: f64, spares: u32) -> Option<f64> {
        self.grid
            .iter()
            .find(|&&(m, s, _)| (m - margin_mv).abs() < 1e-9 && s == spares)
            .map(|&(_, _, q)| q)
    }
}

/// Regenerate Fig 8 (all available cores).
#[must_use]
pub fn run(samples: usize, seed: u64) -> Fig8Result {
    run_with(samples, seed, Executor::default())
}

/// Regenerate Fig 8 on an explicit executor.
#[must_use]
pub fn run_with(samples: usize, seed: u64, exec: Executor) -> Fig8Result {
    let vdd = 0.60;
    let tech = TechModel::new(TechNode::Gp45);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    // Analytic grid: exact order-statistic quantiles, no MC noise
    // (`samples`/`seed` are accepted for interface uniformity only).
    let target_ns = MarginStudy::new(&engine)
        .with_executor(exec)
        .with_evaluation(Evaluation::Analytic)
        .target_delay_ns(Volts(vdd), samples, seed);
    let dse = DseStudy::new(&engine)
        .with_executor(exec)
        .with_evaluation(Evaluation::Analytic);

    let mut grid = Vec::new();
    for &spares in &[0u32, 2, 8] {
        for step in 0..5 {
            let margin_mv = f64::from(step) * 5.0;
            let q99 =
                dse.q99_ns_with_spares(Volts(vdd + margin_mv / 1000.0), spares, samples, seed);
            grid.push((margin_mv, spares, q99));
        }
    }
    Fig8Result {
        vdd,
        target_ns,
        grid,
    }
}

impl std::fmt::Display for Fig8Result {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Fig 8 — q99 chip delay (ns) vs voltage margin and spares, 45nm GP @600 mV"
        )?;
        writeln!(f, "target delay = {:.3} ns", self.target_ns)?;
        let mut t = TextTable::new(&["margin (mV)", "spares", "q99 (ns)", "meets target"]);
        for &(m, s, q) in &self.grid {
            t.row(&[
                format!("{m:.0}"),
                s.to_string(),
                format!("{q:.3}"),
                if q <= self.target_ns { "yes" } else { "no" }.to_owned(),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_monotone_in_both_axes() {
        let r = run(2000, 15);
        // Fixed spares: q99 falls with margin.
        for &spares in &[0u32, 2, 8] {
            let series: Vec<f64> = (0..5)
                .map(|i| r.q99_ns(f64::from(i) * 5.0, spares).expect("computed"))
                .collect();
            for w in series.windows(2) {
                assert!(w[1] < w[0], "spares={spares}: {series:?}");
            }
        }
        // Fixed margin: q99 falls with spares.
        for step in 0..5 {
            let m = f64::from(step) * 5.0;
            let s0 = r.q99_ns(m, 0).expect("computed");
            let s8 = r.q99_ns(m, 8).expect("computed");
            assert!(s8 <= s0);
        }
    }

    #[test]
    fn paper_fix_points_meet_target() {
        // Paper: 2 spares + 10 mV, or 8 spares + 5 mV, both reach the target.
        // Our model reproduces the first exactly; the second lands within
        // one percent of the target delay.
        let r = run(2500, 16);
        assert!(r.q99_ns(10.0, 2).expect("computed") <= r.target_ns * 1.002);
        assert!(r.q99_ns(5.0, 8).expect("computed") <= r.target_ns * 1.008);
        // The unmitigated point does not.
        assert!(r.q99_ns(0.0, 0).expect("computed") > r.target_ns);
    }
}
