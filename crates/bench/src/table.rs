//! Minimal text-table rendering for experiment output.

/// A right-aligned text table.
///
/// # Example
///
/// ```
/// use ntv_bench::table::TextTable;
/// let mut t = TextTable::new(&["Vdd", "drop %"]);
/// t.row(&["0.50", "5.1"]);
/// t.row(&["0.55", "2.6"]);
/// let s = t.render();
/// assert!(s.contains("0.50"));
/// assert_eq!(s.lines().count(), 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|&h| h.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_owned()).collect());
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with right-aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, &w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a voltage in millivolts with one decimal.
#[must_use]
pub fn millivolts(v: f64) -> String {
    format!("{:.1} mV", v * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["a", "long-header"]);
        t.row(&["12345", "x"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("long-header"));
        assert!(lines[2].ends_with("x"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0513), "5.1%");
        assert_eq!(millivolts(0.0058), "5.8 mV");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one"]);
    }
}
