//! Scalar-vs-batch throughput of the SoA sampling kernels.
//!
//! Two hot paths from the batch-first refactor, each timed in its scalar
//! (per-element, as the code stood before the refactor) and batch
//! (fixed-stride kernel) formulation. Both formulations are bit-identical
//! by construction — the identity matrix suite pins that — so these
//! numbers measure pure kernel-shape effects: loop interchange, invariant
//! hoisting, and (under `--features portable-simd`) 8-wide lane chunking
//! of the `erfc` Chebyshev recurrence. Results feed `BENCH_batch.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use ntv_core::engine::VariationMode;
use ntv_core::{DatapathConfig, DatapathEngine, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_mc::{normal, reduce, CounterRng};
use ntv_units::Volts;

/// Mixture size of a real survival-grid build: 24 × 12 Gauss–Hermite
/// systematic nodes.
const COMPS: usize = 288;
/// Survival-grid resolution (`PathDistribution::GRID`).
const GRID: usize = 1024;
/// Chip draws per sampling iteration.
const SAMPLES: usize = 4096;

/// Synthetic mixture components shaped like a 0.5 V near-threshold build:
/// weights summing to ~1, means spread a few σ apart.
fn mixture() -> Vec<(f64, f64, f64)> {
    (0..COMPS)
        .map(|i| {
            let t = i as f64 / (COMPS - 1) as f64;
            (
                1.0 / COMPS as f64,
                20_000.0 + 8_000.0 * t,
                900.0 + 400.0 * t,
            )
        })
        .collect()
}

/// The Gauss–Hermite mixture-CDF accumulation of the survival grid, in
/// both formulations from `PathDistribution::grid()`.
fn bench_mixture_cdf(c: &mut Criterion) {
    let comps = mixture();
    let sqrt2 = std::f64::consts::SQRT_2;
    let (lo, hi) = (12_000.0f64, 45_000.0f64);
    let xs: Vec<f64> = (0..GRID)
        .map(|i| lo + (hi - lo) * i as f64 / (GRID - 1) as f64)
        .collect();

    let mut group = c.benchmark_group("batch/gh_mixture_cdf_288x1024");
    // Point-major, one scalar erfc per (point, component) term — the
    // pre-refactor shape.
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let sf: Vec<f64> = xs
                .iter()
                .map(|&x| {
                    reduce::sum_ordered(
                        comps
                            .iter()
                            .map(|&(w, mu, s)| w * 0.5 * normal::erfc((x - mu) / (s * sqrt2))),
                    )
                })
                .collect();
            std::hint::black_box(sf)
        });
    });
    // Component-major with the erfc_slice batch kernel — the shipped shape.
    group.bench_function("batch", |b| {
        b.iter(|| {
            let mut sf = vec![0.0; GRID];
            let mut args = vec![0.0; GRID];
            let mut row = vec![0.0; GRID];
            for &(w, mu, s) in &comps {
                let w2 = w * 0.5;
                let d = s * sqrt2;
                for (a, &x) in args.iter_mut().zip(&xs) {
                    *a = (x - mu) / d;
                }
                normal::erfc_slice(&args, &mut row);
                reduce::axpy_ordered(&mut sf, w2, &row);
            }
            std::hint::black_box(sf)
        });
    });
    group.finish();
}

/// Counter-addressed chip-delay draws: the per-index scalar sampler (one
/// distribution-cache lookup and one quantile inversion per draw) against
/// the SoA kernel (`sample_chip_delays_fo4_batch`).
fn bench_chip_delay_sampling(c: &mut Criterion) {
    let tech = TechModel::new(TechNode::Gp90);
    let stream = CounterRng::new(2012, "bench-batch");
    for (label, mode) in [
        ("skewed_iid", VariationMode::SkewedIid),
        ("paper_normal", VariationMode::PaperNormal),
    ] {
        let engine = DatapathEngine::with_mode(&tech, DatapathConfig::paper_default(), mode);
        // Build the operating point and its survival grid outside timing.
        let _ = engine.sample_batch(Volts(0.5), &stream, 0..1, Executor::serial());

        let mut group = c.benchmark_group(format!("batch/chip_delay_{label}_4096"));
        group.bench_function("scalar", |b| {
            b.iter(|| {
                let out: Vec<f64> = (0..SAMPLES as u64)
                    .map(|i| engine.sample_chip_delay_fo4_at(Volts(0.5), &stream, i))
                    .collect();
                std::hint::black_box(out)
            });
        });
        group.bench_function("batch", |b| {
            b.iter(|| {
                let mut out = vec![0.0; SAMPLES];
                engine.sample_chip_delays_fo4_batch(Volts(0.5), &stream, 0, &mut out);
                std::hint::black_box(out)
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_mixture_cdf, bench_chip_delay_sampling);
criterion_main!(benches);
