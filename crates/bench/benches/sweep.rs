//! Voltage-sweep solver throughput: Monte-Carlo bisection vs the analytic
//! quantile fast path.
//!
//! Times the two end-to-end solvers the paper's tables hang off —
//! `MarginStudy::solve` (Table 2) and `DseStudy::explore` (Table 3) —
//! under both evaluation strategies. The MC variants run at the sample
//! counts the experiment tests use; the analytic variants replace every
//! q99 probe inside the bisection loops with an exact order-statistic
//! quantile, so their cost is pure quadrature on cached operating points.
//! Results feed `BENCH_sweep.json`.

use criterion::{criterion_group, criterion_main, Criterion};

use ntv_bench::experiments::TABLE_VOLTAGES;
use ntv_core::dse::DseStudy;
use ntv_core::margining::MarginStudy;
use ntv_core::{DatapathConfig, DatapathEngine, Evaluation, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_units::Volts;

/// MC sample count for the margining solve (the Table 2 test scale).
const MARGIN_SAMPLES: usize = 2_000;
/// MC sample count for the DSE exploration (the Table 3 test scale).
const DSE_SAMPLES: usize = 1_200;
/// Table 3's spare-count candidates.
const CANDIDATES: [u32; 7] = [0, 1, 2, 4, 8, 16, 26];

fn bench_margin_solve(c: &mut Criterion) {
    let tech = TechModel::new(TechNode::Gp90);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    // Pre-build the swept operating points so both variants measure the
    // solve itself, not the one-time Gauss–Hermite builds.
    engine.prefetch(&TABLE_VOLTAGES.map(Volts), Executor::default());

    let mut group = c.benchmark_group("sweep/margin_solve_gp90_0.50V");
    group.bench_function("mc_2000", |b| {
        let study = MarginStudy::new(&engine);
        b.iter(|| std::hint::black_box(study.solve(Volts(0.50), MARGIN_SAMPLES, 1)));
    });
    group.bench_function("analytic", |b| {
        let study = MarginStudy::new(&engine).with_evaluation(Evaluation::Analytic);
        b.iter(|| std::hint::black_box(study.solve(Volts(0.50), MARGIN_SAMPLES, 1)));
    });
    group.finish();
}

fn bench_dse_explore(c: &mut Criterion) {
    let tech = TechModel::new(TechNode::Gp45);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    engine.prefetch(&[Volts(0.60)], Executor::default());

    let mut group = c.benchmark_group("sweep/dse_explore_gp45_0.60V");
    group.bench_function("mc_1200", |b| {
        let dse = DseStudy::new(&engine);
        b.iter(|| std::hint::black_box(dse.explore(Volts(0.60), &CANDIDATES, DSE_SAMPLES, 1)));
    });
    group.bench_function("analytic", |b| {
        let dse = DseStudy::new(&engine).with_evaluation(Evaluation::Analytic);
        b.iter(|| std::hint::black_box(dse.explore(Volts(0.60), &CANDIDATES, DSE_SAMPLES, 1)));
    });
    group.finish();
}

criterion_group! {
    name = sweep;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_margin_solve, bench_dse_explore
}
criterion_main!(sweep);
