//! Sequential vs. parallel Monte-Carlo throughput.
//!
//! Measures the same index-addressed chip-delay batch drawn three ways:
//! the legacy sequential `StreamRng` loop, the counter-based serial
//! executor (overhead of index addressing alone), and the thread-pool
//! executor at 1/2/4/8 workers. Because every draw is a pure function of
//! `(seed, label, index)`, all executor variants return bit-identical
//! batches — the thread count is purely a speed knob, which is exactly
//! what this bench quantifies. Results feed `BENCH_parallel_mc.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ntv_core::{DatapathConfig, DatapathEngine, Executor};
use ntv_device::{TechModel, TechNode};
use ntv_mc::{CounterRng, StreamRng};
use ntv_units::Volts;

const VDD: Volts = Volts(0.55);
const SAMPLES: u64 = 2_000;

fn bench_sequential_vs_parallel(c: &mut Criterion) {
    let tech = TechModel::new(TechNode::Gp90);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    // Warm the per-vdd path-distribution cache so every variant measures
    // sampling alone, not the one-time distribution build.
    let _ = engine.path_distribution(VDD);
    let stream = CounterRng::new(2012, "bench-parallel");

    let mut group = c.benchmark_group("parallel_mc/chip_delay_batch_2000");
    group.bench_function("sequential_stream_rng", |b| {
        b.iter(|| {
            let mut rng = StreamRng::from_seed(2012);
            let batch: Vec<f64> = (0..SAMPLES)
                .map(|_| engine.sample_chip_delay_fo4(VDD, &mut rng))
                .collect();
            std::hint::black_box(batch)
        });
    });
    group.bench_function("counter_serial", |b| {
        b.iter(|| {
            std::hint::black_box(engine.sample_batch(VDD, &stream, 0..SAMPLES, Executor::serial()))
        });
    });
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("counter_threads", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    std::hint::black_box(engine.sample_batch(
                        VDD,
                        &stream,
                        0..SAMPLES,
                        Executor::new(t),
                    ))
                });
            },
        );
    }
    group.finish();
}

fn bench_distribution_summary(c: &mut Criterion) {
    let tech = TechModel::new(TechNode::Gp90);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    let _ = engine.path_distribution(VDD);
    let stream = CounterRng::new(2012, "bench-parallel-dist");

    let mut group = c.benchmark_group("parallel_mc/chip_delay_distribution_2000");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                std::hint::black_box(engine.chip_delay_distribution_par(
                    VDD,
                    SAMPLES as usize,
                    &stream,
                    Executor::new(t),
                ))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = parallel_mc;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_sequential_vs_parallel, bench_distribution_summary
}
criterion_main!(parallel_mc);
