//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! These benches *measure and print* the quantity under ablation (via
//! `iter_custom`-free plain evaluation in the setup phase) and then time
//! the ablated engine, so `cargo bench` output doubles as the ablation
//! record:
//!
//! 1. **Tail shape** — `PaperNormal` (the paper's normal fit) vs
//!    `SkewedIid` (the exact right-skewed mixture): how much do extreme
//!    chip-delay quantiles move?
//! 2. **Correlation structure** — i.i.d. paths vs the hierarchical
//!    chip/region/device decomposition: how much less effective do spares
//!    become when variation is correlated?
//! 3. **Quadrature order** — the closed-form path model's Gauss–Hermite
//!    accuracy/cost trade-off against brute-force Monte Carlo.
//! 4. **MC vs QMC** — quantile-estimator error of plain Monte Carlo
//!    against a Halton low-discrepancy stream at equal sample budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ntv_core::duplication::DuplicationStudy;
use ntv_core::engine::VariationMode;
use ntv_core::perf;
use ntv_core::{DatapathConfig, DatapathEngine};
use ntv_device::{TechModel, TechNode};
use ntv_mc::StreamRng;
use ntv_units::Volts;

fn bench_tail_shape(c: &mut Criterion) {
    let tech = TechModel::new(TechNode::PtmHp22);
    let mut group = c.benchmark_group("ablation_tail_shape");
    for (label, mode) in [
        ("paper_normal", VariationMode::PaperNormal),
        ("skewed_iid", VariationMode::SkewedIid),
    ] {
        let engine = DatapathEngine::with_mode(&tech, DatapathConfig::paper_default(), mode);
        // Report the ablated quantity once.
        let drop =
            perf::performance_drop(&engine, Volts(0.5), 2_000, 1, ntv_core::Executor::default())
                .drop;
        println!(
            "[ablation] 22nm perf drop @0.5V with {label}: {:.1}%",
            drop * 100.0
        );
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, _| {
            let mut rng = StreamRng::from_seed(1);
            b.iter(|| std::hint::black_box(engine.sample_chip_delay_fo4(Volts(0.5), &mut rng)));
        });
    }
    group.finish();
}

fn bench_correlation_structure(c: &mut Criterion) {
    let tech = TechModel::new(TechNode::Gp90);
    let mut group = c.benchmark_group("ablation_correlation");
    for (label, mode) in [
        ("paper_normal_iid", VariationMode::PaperNormal),
        ("hierarchical", VariationMode::Hierarchical),
    ] {
        let engine = DatapathEngine::with_mode(&tech, DatapathConfig::paper_default(), mode);
        let study = DuplicationStudy::new(&engine);
        let baseline = perf::baseline_q99_fo4(&engine, 2_000, 2, ntv_core::Executor::default());
        let matrix = study.sample_matrix(Volts(0.55), 128, 2_000, 2);
        let spares = study.required_spares(&matrix, baseline);
        println!(
            "[ablation] 90nm spares needed @0.55V with {label}: {}",
            spares.map_or_else(|_| ">128".to_owned(), |s| s.to_string())
        );
        group.bench_with_input(BenchmarkId::from_parameter(label), &mode, |b, _| {
            let mut rng = StreamRng::from_seed(3);
            b.iter(|| {
                std::hint::black_box(engine.sample_lane_delays_fo4(Volts(0.55), 134, &mut rng))
            });
        });
    }
    group.finish();
}

fn bench_quadrature_order(c: &mut Criterion) {
    use ntv_circuit::chain::ChainMc;
    use ntv_mc::GaussHermite;

    let tech = TechModel::new(TechNode::Gp45);
    let chain = ChainMc::new(&tech, 50);
    let mut rng = StreamRng::from_seed(4);
    let mc_mean = chain.summary(Volts(0.55), 4_000, &mut rng).mean();

    let mut group = c.benchmark_group("ablation_quadrature_order");
    for order in [4usize, 8, 16, 32] {
        let gh = GaussHermite::new(order);
        let params = *tech.params();
        let chip = ntv_device::ChipSample::nominal();
        let mean =
            50.0 * gh.expect_normal(0.0, params.sigma_vth_random.get(), |dv| {
                tech.gate_delay_ps_at(Volts(0.55), &chip, Volts(dv), 0.0)
            }) * (0.5 * params.sigma_k_random * params.sigma_k_random).exp();
        println!(
            "[ablation] GH order {order}: conditional chain mean {mean:.1} ps (gate-level MC cross-chip mean {mc_mean:.1} ps)"
        );
        group.bench_with_input(BenchmarkId::from_parameter(order), &order, |b, _| {
            b.iter(|| {
                std::hint::black_box(gh.expect_normal(0.0, params.sigma_vth_random.get(), |dv| {
                    tech.gate_delay_ps_at(Volts(0.55), &chip, Volts(dv), 0.0)
                }))
            });
        });
    }
    group.finish();
}

fn bench_mc_vs_qmc(c: &mut Criterion) {
    use ntv_mc::qmc::Halton;
    use ntv_mc::{normal, order, Quantiles};

    // True q99 of the max of 12,800 standard normals.
    let true_q99 = normal::quantile(0.99_f64.powf(1.0 / 12_800.0));
    let n = 2_000;

    let mut h = Halton::new(2);
    let qmc: Vec<f64> = (0..n).map(|_| h.next_max_normal(12_800)).collect();
    let qmc_err = (Quantiles::from_samples(qmc).q99() - true_q99).abs();
    let mut rng = StreamRng::from_seed(11);
    let mc: Vec<f64> = (0..n)
        .map(|_| order::sample_max_normal(&mut rng, 12_800, 0.0, 1.0))
        .collect();
    let mc_err = (Quantiles::from_samples(mc).q99() - true_q99).abs();
    println!(
        "[ablation] q99(max of 12800) estimator error at {n} samples: MC {mc_err:.4}, QMC {qmc_err:.4}"
    );

    let mut group = c.benchmark_group("ablation_mc_vs_qmc");
    group.bench_function("mc_sample", |b| {
        let mut rng = StreamRng::from_seed(12);
        b.iter(|| std::hint::black_box(order::sample_max_normal(&mut rng, 12_800, 0.0, 1.0)));
    });
    group.bench_function("qmc_sample", |b| {
        let mut h = Halton::new(2);
        b.iter(|| std::hint::black_box(h.next_max_normal(12_800)));
    });
    group.finish();
}

criterion_group! {
    name = ablations;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_tail_shape, bench_correlation_structure, bench_quadrature_order,
        bench_mc_vs_qmc
}
criterion_main!(ablations);
