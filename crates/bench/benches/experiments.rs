//! Criterion benches: one group per paper table/figure, timing the
//! regeneration kernel at a reduced Monte-Carlo size (the statistical
//! results themselves are produced by the `repro` binary at full size;
//! these benches track the cost of each experiment's engine).

use criterion::{criterion_group, criterion_main, Criterion};

use ntv_bench::experiments::{
    fig1, fig11, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9, placement, policies, table1,
    table2, table3, table4,
};

const SEED: u64 = 7;

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1/inverter_and_chain_mc", |b| {
        b.iter(|| std::hint::black_box(fig1::run(100, SEED)));
    });
}

fn bench_fig2(c: &mut Criterion) {
    c.bench_function("fig2/chain_sweep_4_nodes", |b| {
        b.iter(|| std::hint::black_box(fig2::run(60, SEED)));
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3/distribution_curves", |b| {
        b.iter(|| std::hint::black_box(fig3::run(500, SEED)));
    });
}

fn bench_fig4(c: &mut Criterion) {
    c.bench_function("fig4/perf_drop_sweep", |b| {
        b.iter(|| std::hint::black_box(fig4::run(500, SEED)));
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5/duplicated_distributions", |b| {
        b.iter(|| std::hint::black_box(fig5::run(400, SEED)));
    });
}

fn bench_fig6(c: &mut Criterion) {
    c.bench_function("fig6/margin_distributions", |b| {
        b.iter(|| std::hint::black_box(fig6::run(400, SEED)));
    });
}

fn bench_fig7(c: &mut Criterion) {
    c.bench_function("fig7/technique_comparison", |b| {
        b.iter(|| std::hint::black_box(fig7::run(150, SEED)));
    });
}

fn bench_fig8(c: &mut Criterion) {
    c.bench_function("fig8/margin_spare_grid", |b| {
        b.iter(|| std::hint::black_box(fig8::run(100, SEED)));
    });
}

fn bench_fig9(c: &mut Criterion) {
    c.bench_function("fig9/energy_sweep", |b| {
        b.iter(|| std::hint::black_box(fig9::run()));
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11/chain_length_sweep", |b| {
        b.iter(|| std::hint::black_box(fig11::run(60, SEED)));
    });
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/spare_solver_4_nodes", |b| {
        b.iter(|| std::hint::black_box(table1::run(150, SEED)));
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2/margin_solver_4_nodes", |b| {
        b.iter(|| std::hint::black_box(table2::run(100, SEED)));
    });
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3/combined_dse", |b| {
        b.iter(|| std::hint::black_box(table3::run(100, SEED)));
    });
}

fn bench_table4(c: &mut Criterion) {
    c.bench_function("table4/frequency_margining", |b| {
        b.iter(|| std::hint::black_box(table4::run(400, SEED)));
    });
}

fn bench_placement(c: &mut Criterion) {
    c.bench_function("placement/global_vs_local", |b| {
        b.iter(|| std::hint::black_box(placement::run(SEED)));
    });
}

fn bench_policies(c: &mut Criterion) {
    c.bench_function("policies/pe_fault_injection", |b| {
        b.iter(|| std::hint::black_box(policies::run(3, SEED)));
    });
}

criterion_group! {
    name = experiments;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_fig1, bench_fig2, bench_fig3, bench_fig4, bench_fig5,
        bench_fig6, bench_fig7, bench_fig8, bench_fig9, bench_fig11,
        bench_table1, bench_table2, bench_table3, bench_table4,
        bench_placement, bench_policies
}
criterion_main!(experiments);
