//! Micro-benchmarks of the simulation engines themselves: the gate-level
//! chain Monte Carlo, the quadrature path model, the architecture-level
//! samplers, the STA netlist engine, and the Diet SODA PE interpreter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ntv_circuit::adder::kogge_stone;
use ntv_circuit::chain::ChainMc;
use ntv_circuit::path_model::PathModel;
use ntv_circuit::sta;
use ntv_core::{DatapathConfig, DatapathEngine};
use ntv_device::{ChipSample, TechModel, TechNode};
use ntv_mc::StreamRng;
use ntv_soda::kernels;
use ntv_soda::pe::ProcessingElement;
use ntv_units::Volts;

fn bench_chain_mc(c: &mut Criterion) {
    let tech = TechModel::new(TechNode::Gp90);
    let mut group = c.benchmark_group("chain_mc");
    for len in [1usize, 50, 400] {
        let chain = ChainMc::new(&tech, len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            let mut rng = StreamRng::from_seed(1);
            b.iter(|| std::hint::black_box(chain.sample_ps(Volts(0.55), &mut rng)));
        });
    }
    group.finish();
}

fn bench_path_model(c: &mut Criterion) {
    let tech = TechModel::new(TechNode::Gp45);
    let model = PathModel::new(&tech, 50);
    let chip = ChipSample::nominal();
    c.bench_function("path_model/conditional_moments", |b| {
        b.iter(|| std::hint::black_box(model.conditional_moments(Volts(0.55), &chip)));
    });
}

fn bench_datapath_engine(c: &mut Criterion) {
    let tech = TechModel::new(TechNode::Gp90);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    // Warm the path-distribution cache so the bench isolates sampling.
    let _ = engine.path_distribution(Volts(0.55));
    let mut group = c.benchmark_group("datapath_engine");
    group.bench_function("chip_delay_sample", |b| {
        let mut rng = StreamRng::from_seed(2);
        b.iter(|| std::hint::black_box(engine.sample_chip_delay_fo4(Volts(0.55), &mut rng)));
    });
    group.bench_function("lane_delays_160", |b| {
        let mut rng = StreamRng::from_seed(3);
        b.iter(|| std::hint::black_box(engine.sample_lane_delays_fo4(Volts(0.55), 160, &mut rng)));
    });
    group.bench_function("path_distribution_build", |b| {
        b.iter(|| {
            let fresh = DatapathEngine::new(&tech, DatapathConfig::paper_default());
            std::hint::black_box(fresh.path_distribution(Volts(0.55)))
        });
    });
    group.finish();
}

fn bench_sta(c: &mut Criterion) {
    let tech = TechModel::new(TechNode::Gp90);
    let adder = kogge_stone(64);
    c.bench_function("sta/kogge_stone_64_mc_trial", |b| {
        let mut rng = StreamRng::from_seed(4);
        b.iter(|| {
            let chip = tech.sample_chip(&mut rng);
            let delays = sta::sample_delays(&adder, &tech, Volts(0.6), &chip, &mut rng);
            std::hint::black_box(sta::analyze(&adder, &delays).critical_delay_ps)
        });
    });
}

fn bench_soda(c: &mut Criterion) {
    let mut group = c.benchmark_group("soda");
    group.bench_function("fir_5tap_384", |b| {
        let signal: Vec<i16> = (0..384).map(|i| ((i * 37) % 199) as i16 - 99).collect();
        b.iter(|| {
            let mut pe = ProcessingElement::new();
            std::hint::black_box(
                kernels::fir(&mut pe, &signal, &[3, -1, 4, 1, -5], 2).expect("kernel runs"),
            );
        });
    });
    group.bench_function("fft128", |b| {
        let re: Vec<i16> = (0..128).map(|i| ((i * 53) % 8191) as i16 - 4096).collect();
        let im = vec![0i16; 128];
        b.iter(|| {
            let mut pe = ProcessingElement::new();
            std::hint::black_box(kernels::fft128(&mut pe, &re, &im).expect("kernel runs"));
        });
    });
    group.finish();
}

criterion_group! {
    name = engines;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_chain_mc, bench_path_model, bench_datapath_engine, bench_sta, bench_soda
}
criterion_main!(engines);
