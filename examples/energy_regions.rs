//! Map the three operating regions (super-, near-, sub-threshold) and the
//! energy/performance trade-off that makes near-threshold the sweet spot —
//! the paper's Fig 9 as an interactive sweep.
//!
//! ```text
//! cargo run --release --example energy_regions [-- <node>]
//! ```

use ntv_simd::device::energy::EnergyModel;
use ntv_simd::device::{TechModel, TechNode};
use ntv_simd::units::Volts;

fn main() {
    let node: TechNode = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("node: one of 90nm/45nm/32nm/22nm"))
        .unwrap_or(TechNode::Gp90);
    let tech = TechModel::new(node);
    let energy = EnergyModel::new(&tech);

    println!("energy and delay vs supply voltage, {node} (per chain-of-50 op)\n");
    println!(
        "{:>6} {:>16} {:>12} {:>12} {:>12} {:>12}",
        "Vdd", "region", "E_sw (fJ)", "E_leak (fJ)", "E_total (fJ)", "delay (ns)"
    );
    for p in energy.sweep(Volts(0.15), tech.nominal_vdd(), 30) {
        println!(
            "{:>5.2}V {:>16} {:>12.1} {:>12.2} {:>12.1} {:>12.2}",
            p.vdd.get(),
            tech.region(p.vdd).to_string(),
            p.switching_fj,
            p.leakage_fj,
            p.total_fj,
            p.delay_ns
        );
    }

    let minimum = energy.minimum_energy_point();
    let ntv = energy.point(Volts(0.5));
    let nominal = energy.point(tech.nominal_vdd());
    println!(
        "\nminimum-energy point: {:.1} fJ at {:.2} V ({}), but {:.0}x slower than nominal",
        minimum.total_fj,
        minimum.vdd.get(),
        tech.region(minimum.vdd),
        minimum.delay_ns / nominal.delay_ns
    );
    println!(
        "near-threshold (0.50 V): {:.1}x the minimum's energy for {:.1}x its speed",
        ntv.total_fj / minimum.total_fj,
        minimum.delay_ns / ntv.delay_ns
    );
    println!(
        "vs nominal ({:.1} V): {:.1}x less energy at {:.1}x the delay",
        tech.nominal_vdd().get(),
        nominal.total_fj / ntv.total_fj,
        ntv.delay_ns / nominal.delay_ns
    );
    println!("\nthat balance — big energy win, recoverable-by-parallelism slowdown —");
    println!("is why the paper pairs near-threshold circuits with a wide SIMD array.");
}
