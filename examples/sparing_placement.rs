//! Global vs local spare placement (paper Appendix D / Fig 12): why
//! Diet SODA pools its spares behind the XRAM crossbar instead of
//! dedicating one spare to each 4-lane cluster.
//!
//! ```text
//! cargo run --release --example sparing_placement
//! ```

use ntv_simd::core::placement::{
    lane_failure_probability, mc_repair_probability, repair_probability, SparePlacement,
};
use ntv_simd::core::{DatapathConfig, DatapathEngine};
use ntv_simd::device::{TechModel, TechNode};
use ntv_simd::mc::StreamRng;
use ntv_simd::soda::LaneMap;
use ntv_simd::units::Volts;

fn main() {
    let tech = TechModel::new(TechNode::PtmHp22);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    let mut rng = StreamRng::from_seed(5);

    // Derive a realistic per-lane failure probability from the variation
    // model: 22 nm at 0.55 V, clocked at the lane-delay 90% quantile
    // (aggressive binning: ~13 of 128 lanes miss timing on a typical chip).
    let vdd = 0.55;
    let lane_q = ntv_simd::mc::Quantiles::from_samples(engine.sample_lane_delays_fo4(
        Volts(vdd),
        4_000,
        &mut rng,
    ));
    let t_clk_fo4 = lane_q.quantile(0.90);
    let t_clk_ns = t_clk_fo4 * engine.fo4_unit_ps(Volts(vdd)) / 1000.0;
    let p_fail = lane_failure_probability(&engine, Volts(vdd), t_clk_ns, 400, &mut rng);
    println!(
        "22nm @{vdd} V, clock at {t_clk_fo4:.1} FO4 ({t_clk_ns:.2} ns): per-lane \
         timing-failure probability = {p_fail:.3}\n"
    );

    let local = SparePlacement::Local {
        cluster_size: 4,
        spares_per_cluster: 1,
    };
    let global = SparePlacement::Global { spares: 32 };
    println!("both schemes spend 32 spares on a 128-lane array:\n");
    println!(
        "{:>8} {:>18} {:>18} {:>14} {:>14}",
        "p_fail", "local analytic", "global analytic", "local MC", "global MC"
    );
    for p in [p_fail / 4.0, p_fail, 2.0 * p_fail, 4.0 * p_fail] {
        let p = p.min(0.5);
        println!(
            "{:>8.3} {:>18.4} {:>18.4} {:>14.4} {:>14.4}",
            p,
            repair_probability(local, 128, p),
            repair_probability(global, 128, p),
            mc_repair_probability(local, 128, p, 20_000, &mut rng),
            mc_repair_probability(global, 128, p, 20_000, &mut rng),
        );
    }

    // The crossbar mapping that makes global sparing routable (Fig 12c):
    // bypass a burst of adjacent faulty lanes.
    println!("\nXRAM bypass of a burst failure (lanes 40-42 faulty, 8 spares):");
    let map = LaneMap::with_faulty(128, 136, &[40, 41, 42]).expect("repairable");
    for logical in [38usize, 39, 40, 41, 42, 43] {
        println!(
            "  logical lane {logical:>3} -> physical lane {:>3}",
            map.physical(logical)
        );
    }
    println!(
        "  ... logical lane 127 -> physical lane {} (three spares consumed)",
        map.physical(127)
    );
    println!("\na 1-spare-per-4-lane local scheme cannot absorb this burst: cluster");
    println!("10 (lanes 40..43) has three faults but only one spare (Appendix D).");
}
