//! Mitigation planner: given a node and an NTV operating point, price
//! every way of restoring nominal-level timing yield — spares only,
//! margin only, frequency backoff, and combinations — and recommend the
//! cheapest (the paper's §4.4 methodology as a tool).
//!
//! ```text
//! cargo run --release --example mitigation_planner [-- <node> <vdd>]
//! e.g.  cargo run --release --example mitigation_planner -- 45nm 0.6
//! ```

use ntv_simd::core::dse::DseStudy;
use ntv_simd::core::duplication::DuplicationStudy;
use ntv_simd::core::frequency::frequency_margining;
use ntv_simd::core::margining::MarginStudy;
use ntv_simd::core::{DatapathConfig, DatapathEngine, Executor};
use ntv_simd::device::{TechModel, TechNode};
use ntv_simd::units::Volts;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let node: TechNode = args
        .get(1)
        .map(|s| s.parse().expect("node: one of 90nm/45nm/32nm/22nm"))
        .unwrap_or(TechNode::Gp45);
    let vdd: f64 = args
        .get(2)
        .map(|s| s.parse().expect("vdd in volts"))
        .unwrap_or(0.60);
    let samples = 5_000;
    let seed = 11;

    let tech = TechModel::new(node);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    println!("mitigation plan for a 128-wide SIMD datapath, {node} @ {vdd} V\n");

    // Frequency backoff: the do-nothing option.
    let freq = frequency_margining(&engine, Volts(vdd), samples, seed, Executor::default());
    println!(
        "0. frequency margining: stretch the clock from {:.2} ns to {:.2} ns\n   -> {:.1}% throughput loss, no power overhead (but the SIMD clock must\n      stay a multiple of the memory clock, §4.3)",
        freq.t_clk_ns,
        freq.t_va_clk_ns,
        freq.perf_drop * 100.0
    );

    // Duplication only.
    match DuplicationStudy::new(&engine).solve(Volts(vdd), 128, samples, seed) {
        Ok(sol) => println!(
            "1. duplication only: {} spare lanes -> {:.1}% area, {:.2}% power",
            sol.spares,
            sol.area_overhead * 100.0,
            sol.power_overhead * 100.0
        ),
        Err(e) => println!("1. duplication only: {e} — impractical at this point"),
    }

    // Margining only.
    let margin = MarginStudy::new(&engine).solve(Volts(vdd), samples, seed);
    println!(
        "2. margining only: +{:.1} mV -> {:.2}% power",
        margin.margin.get() * 1000.0,
        margin.power_overhead * 100.0
    );

    // Combinations.
    let dse = DseStudy::new(&engine);
    let choices = dse.explore(Volts(vdd), &[0, 1, 2, 4, 8, 16, 26], samples, seed);
    println!("3. combinations (spares + residual margin):");
    for c in &choices {
        println!(
            "     {:>2} spares + {:>5.1} mV -> {:.2}% power",
            c.spares,
            c.margin.get() * 1000.0,
            c.power_overhead * 100.0
        );
    }
    let best = DseStudy::best(&choices);
    println!(
        "\nrecommendation: {} spares + {:.1} mV ({:.2}% power overhead)",
        best.spares,
        best.margin.get() * 1000.0,
        best.power_overhead * 100.0
    );
}
