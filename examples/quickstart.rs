//! Quickstart: how much does process variation cost a near-threshold wide
//! SIMD datapath, and what is the cheapest fix?
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ntv_simd::core::compare::compare_at;
use ntv_simd::core::perf::performance_drop;
use ntv_simd::core::{DatapathConfig, DatapathEngine, Executor};
use ntv_simd::device::{TechModel, TechNode};
use ntv_simd::mc::StreamRng;
use ntv_simd::units::Volts;

fn main() {
    let samples = 5_000;
    let seed = 42;

    // A 128-lane SIMD datapath (100 critical paths per lane, 50 FO4 each —
    // the paper's Diet SODA configuration) in 90 nm, run at 0.55 V.
    let tech = TechModel::new(TechNode::Gp90);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    let vdd = 0.55;

    // 1. The raw voltage scaling win: delay and switching-energy factors.
    let slowdown = tech.fo4_delay_ps(Volts(vdd)) / tech.fo4_delay_ps(Volts(1.0));
    println!("90nm GP @{vdd} V vs 1.0 V:");
    println!(
        "  gate delay grows {slowdown:.1}x, switching energy shrinks {:.1}x",
        (1.0 / vdd).powi(2)
    );

    // 2. What variation adds on top: the 99% chip-delay point in FO4 units.
    let mut rng = StreamRng::from_seed(seed);
    let dist = engine.chip_delay_distribution(Volts(vdd), samples, &mut rng);
    println!(
        "  ideal critical path is 50 FO4; the 99% point of the slowest of\n  \
         12,800 paths is {:.1} FO4 ({:.2} ns)",
        dist.q99_fo4(),
        dist.q99_ns()
    );
    let drop = performance_drop(&engine, Volts(vdd), samples, seed, Executor::default());
    println!(
        "  variation-induced performance drop vs nominal: {:.1}%",
        drop.drop * 100.0
    );

    // 3. The mitigation menu: spare lanes vs a few millivolts.
    let point = compare_at(&engine, Volts(vdd), 128, samples, seed, Executor::default());
    match (point.spares, point.duplication_power) {
        (Some(spares), Some(power)) => println!(
            "  structural duplication: {spares} spare lanes ({:.1}% power overhead)",
            power * 100.0
        ),
        _ => println!("  structural duplication: >128 spares needed (impractical)"),
    }
    println!(
        "  voltage margining: +{:.1} mV ({:.1}% power overhead)",
        point.margin.get() * 1000.0,
        point.margining_power * 100.0
    );
    println!("  cheapest: {}", point.preferred());
}
