//! Sweep delay variation from a single gate up to a 128-wide SIMD chip,
//! across technology nodes and supply voltages — the paper's Section 3
//! story in one table.
//!
//! ```text
//! cargo run --release --example variation_sweep
//! ```

use ntv_simd::circuit::chain::ChainMc;
use ntv_simd::core::perf::performance_drop;
use ntv_simd::core::{DatapathConfig, DatapathEngine, Executor};
use ntv_simd::device::{TechModel, TechNode};
use ntv_simd::mc::StreamRng;
use ntv_simd::units::Volts;

fn main() {
    let circuit_samples = 800;
    let arch_samples = 4_000;
    let seed = 7;

    println!(
        "{:<12} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "node", "Vdd", "1 gate", "chain-50", "KS-adder-ish", "128-wide drop"
    );
    println!("{}", "-".repeat(72));

    for node in TechNode::ALL {
        let tech = TechModel::new(node);
        let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
        for vdd in [tech.nominal_vdd(), Volts(0.6), Volts(0.5)] {
            let mut rng = StreamRng::from_seed(seed);
            let single = ChainMc::new(&tech, 1).three_sigma_over_mu(vdd, circuit_samples, &mut rng);
            let chain = ChainMc::new(&tech, 50).three_sigma_over_mu(vdd, circuit_samples, &mut rng);
            // A prefix-adder critical path is ~8 levels of complex gates;
            // emulate with a 12-stage chain (cheap proxy for the STA run).
            let adder = ChainMc::new(&tech, 12).three_sigma_over_mu(vdd, circuit_samples, &mut rng);
            let drop = performance_drop(&engine, vdd, arch_samples, seed, Executor::default()).drop;
            println!(
                "{:<12} {:>6.2}V {:>11.1}% {:>11.1}% {:>11.1}% {:>11.1}%",
                node.to_string(),
                vdd.get(),
                single * 100.0,
                chain * 100.0,
                adder * 100.0,
                drop * 100.0
            );
        }
        println!();
    }

    println!("takeaways (paper §3):");
    println!(" - a single gate's variation explodes below ~0.6 V,");
    println!(" - chains average most of it out (the 3sigma/mu drops ~3x at 50 stages),");
    println!(" - but the slowest-of-12,800-paths statistics claw some of it back,");
    println!(" - and technology scaling (22 nm) makes every row worse.");
}
