//! Run a digital-camera-style kernel pipeline (2-D convolution + FIR +
//! FFT) on the Diet SODA simulator at a near-threshold operating point
//! with variation-induced timing faults, under all three error-handling
//! policies — the functional counterpart of the paper's §4 argument.
//!
//! ```text
//! cargo run --release --example soda_camera_pipeline
//! ```

use ntv_simd::core::{DatapathConfig, DatapathEngine};
use ntv_simd::device::{TechModel, TechNode};
use ntv_simd::mc::StreamRng;
use ntv_simd::soda::kernels::{self, golden};
use ntv_simd::soda::pe::{EnergyConfig, ProcessingElement};
use ntv_simd::soda::{ErrorPolicy, FaultModel};
use ntv_simd::units::Volts;

fn main() {
    let node = TechNode::Gp90;
    let vdd = 0.55;
    let spares = 6; // Table 1's 90nm @0.55V answer
    let tech = TechModel::new(node);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());

    // Clock the SIMD domain aggressively: at the lane-delay quantile where
    // ~2 of the 134 lanes on a typical chip miss timing.
    let mut rng = StreamRng::from_seed(2012);
    let lane_q = ntv_simd::mc::Quantiles::from_samples(engine.sample_lane_delays_fo4(
        Volts(vdd),
        4_000,
        &mut rng,
    ));
    let t_clk_ns = lane_q.quantile(1.0 - 2.0 / (128.0 + spares as f64))
        * engine.fo4_unit_ps(Volts(vdd))
        / 1000.0;
    // Sample fabricated chips until one has repairable faulty lanes, so the
    // policies have something to disagree about.
    let fault = loop {
        let f = FaultModel::from_engine(&engine, Volts(vdd), t_clk_ns, spares, 0.0, &mut rng);
        let faults = f.faulty_lanes(0.99).len();
        if faults >= 1 && faults <= spares {
            break f;
        }
    };
    println!(
        "{node} @{vdd} V, clock {t_clk_ns:.2} ns: fabricated chip has {} hard-faulty lanes\n",
        fault.faulty_lanes(0.99).len()
    );

    // Workload: 6-row 3x3 convolution + 5-tap FIR + 128-pt FFT.
    let image: Vec<Vec<i16>> = (0..6)
        .map(|r| {
            (0..128)
                .map(|c| ((r * 131 + c * 17) % 255) as i16 - 127)
                .collect()
        })
        .collect();
    let kernel = [[1, 2, 1], [2, 4, 2], [1, 2, 1]];
    let signal: Vec<i16> = (0..384).map(|i| ((i * 37) % 199) as i16 - 99).collect();
    let taps = [3, -1, 4, 1, -5];
    let tone: Vec<i16> = (0..128)
        .map(|i| (6000.0 * (2.0 * std::f64::consts::PI * 3.0 * f64::from(i) / 128.0).cos()) as i16)
        .collect();
    let zeros = vec![0i16; 128];

    let golden_conv = golden::conv2d_3x3(&image, &kernel, 4);
    let golden_fir = golden::fir(&signal, &taps, 2);

    println!(
        "{:<12} {:>8} {:>8} {:>10} {:>12} {:>14}",
        "policy", "cycles", "replays", "energy(pJ)", "conv correct", "fir correct"
    );
    for policy in [
        ErrorPolicy::Corrupt,
        ErrorPolicy::StallRetry,
        ErrorPolicy::SpareRemap,
    ] {
        let mut pe = ProcessingElement::new();
        pe.set_energy_config(EnergyConfig::for_tech(&tech, Volts(vdd)));
        pe.set_error_policy(policy);
        pe.set_fault_model(fault.clone(), StreamRng::from_seed(99));
        if policy == ErrorPolicy::SpareRemap {
            pe.repair(0.5).expect("enough spares for this chip");
        }

        let conv = kernels::conv2d_3x3(&mut pe, &image, &kernel, 4).expect("runs");
        let fir_out = kernels::fir(&mut pe, &signal, &taps, 2).expect("runs");
        let _ = kernels::fft128(&mut pe, &tone, &zeros).expect("runs");

        let conv_ok = conv == golden_conv;
        let fir_ok = fir_out[..] == golden_fir[..fir_out.len()];
        let stats = pe.stats();
        println!(
            "{:<12} {:>8} {:>8} {:>10.0} {:>12} {:>14}",
            policy.to_string(),
            stats.cycles,
            stats.replays,
            stats.total_energy_pj(),
            conv_ok,
            fir_ok
        );
    }

    println!("\nthe paper's point (§4): per-op recovery (stall-retry) keeps the data");
    println!("correct but pays cycles and energy on every error across all 128 lanes;");
    println!("test-time spare remapping through the XRAM crossbar removes the faulty");
    println!("lanes from the array entirely — same answers, no runtime penalty.");
}
