//! Drive the netlist + static-timing-analysis engine directly: build the
//! paper-cited 64-bit Kogge–Stone adder (and friends), run Monte-Carlo STA
//! under near-threshold variation, and dump a Graphviz view of the
//! critical path.
//!
//! ```text
//! cargo run --release --example netlist_sta [> adder.dot]
//! ```

use ntv_simd::circuit::adder::{brent_kung, kogge_stone, ripple_carry};
use ntv_simd::circuit::multiplier::array_multiplier;
use ntv_simd::circuit::report::{to_dot, NetlistStats};
use ntv_simd::circuit::{sta, Netlist};
use ntv_simd::device::{TechModel, TechNode};
use ntv_simd::mc::{StreamRng, Summary};
use ntv_simd::units::Volts;

fn survey(tech: &TechModel, name: &str, netlist: &Netlist, samples: usize) {
    let stats = NetlistStats::of(netlist);
    let nominal = sta::analyze(netlist, &sta::nominal_delays(netlist, tech, Volts(1.0)));
    let mut rng = StreamRng::from_seed(7);
    let mc: Summary = sta::mc_critical_delays(netlist, tech, Volts(0.5), samples, &mut rng)
        .into_iter()
        .collect();
    println!("{name}:");
    println!("  {stats}");
    println!(
        "  nominal critical path @1.0 V: {:.0} ps ({} cells deep)",
        nominal.critical_delay_ps,
        nominal.critical_path.len() - 1
    );
    println!(
        "  @0.5 V under variation: mean {:.0} ps, 3sigma/mu {:.1}%\n",
        mc.mean(),
        mc.three_sigma_over_mu() * 100.0
    );
}

fn main() {
    let tech = TechModel::new(TechNode::Gp90);

    survey(&tech, "64-bit Kogge-Stone adder", &kogge_stone(64), 150);
    survey(&tech, "64-bit Brent-Kung adder", &brent_kung(64), 150);
    survey(&tech, "64-bit ripple-carry adder", &ripple_carry(64), 80);
    survey(&tech, "16x16 array multiplier", &array_multiplier(16), 80);

    println!("the paper cites ~8.4% (3sigma/mu) at 0.5 V for a 64-bit Kogge-Stone");
    println!("(Drego et al.) — the same band the chain-of-50 proxy lives in, which");
    println!("is why a 50-FO4 chain stands in for SIMD-lane critical paths.\n");

    // Emit a small adder with its nominal critical path highlighted.
    let small = kogge_stone(8);
    let result = sta::analyze(&small, &sta::nominal_delays(&small, &tech, Volts(1.0)));
    let dot = to_dot(&small, &result.critical_path);
    println!(
        "--- kogge-stone-8 critical path in Graphviz (pipe through `dot -Tsvg`) ---\n{}",
        &dot[..dot.len().min(800)]
    );
    println!("... ({} total DOT lines)", dot.lines().count());
}
