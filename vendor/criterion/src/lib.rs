//! Offline vendored stand-in for `criterion`.
//!
//! Benchmarks in `crates/bench/benches/` are written against the real
//! criterion 0.5 API. This stub keeps them compiling and running without
//! crates.io access: it implements the same names (`Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher`, `criterion_group!`,
//! `criterion_main!`) with a deliberately simple measurement loop — a short
//! warm-up, then `sample_size` timed batches, reporting the median batch
//! time per iteration. That is enough for coarse regression spotting; swap
//! in real criterion for publication-quality statistics.
//!
//! Wall-clock reads live only here, in a bench-only crate, which is exactly
//! the boundary `cargo xtask lint` draws for the rest of the workspace.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark, mirroring criterion's type.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher<'a> {
    config: &'a Config,
    /// Median seconds per iteration, filled in by `iter`.
    result_s: f64,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent, counting
        // iterations so we can size the timed batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.config.warm_up_time.as_secs_f64() / warm_iters.max(1) as f64;

        // Aim each timed batch at measurement_time / sample_size seconds.
        let samples = self.config.sample_size.max(2);
        let batch_budget = self.config.measurement_time.as_secs_f64() / samples as f64;
        let batch_iters = ((batch_budget / per_iter.max(1e-12)) as u64).max(1);

        let mut per_iter_times: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            per_iter_times.push(t0.elapsed().as_secs_f64() / batch_iters as f64);
        }
        per_iter_times.sort_by(f64::total_cmp);
        self.result_s = per_iter_times[per_iter_times.len() / 2];
    }
}

#[derive(Debug, Clone)]
struct Config {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&self.config, &id.to_string(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.criterion.config, &label, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&self.criterion.config, &label, |b| f(b, input));
        self
    }

    #[must_use]
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.config.sample_size = n;
        self
    }

    #[must_use]
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.config.measurement_time = d;
        self
    }

    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Config, label: &str, mut f: F) {
    let mut bencher = Bencher {
        config,
        result_s: f64::NAN,
    };
    f(&mut bencher);
    let s = bencher.result_s;
    let pretty = if s.is_nan() {
        "no measurement".to_string()
    } else if s < 1e-6 {
        format!("{:9.2} ns/iter", s * 1e9)
    } else if s < 1e-3 {
        format!("{:9.2} µs/iter", s * 1e6)
    } else if s < 1.0 {
        format!("{:9.2} ms/iter", s * 1e3)
    } else {
        format!("{s:9.3}  s/iter")
    };
    println!("bench {label:<48} {pretty}");
}

/// Mirrors `criterion_group!`: both the simple and the `config =` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        // Generated plumbing; exempt from the workspace's missing_docs lint.
        #[doc(hidden)]
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
