//! No-op `Serialize` / `Deserialize` derives for the vendored serde stub.
//!
//! The workspace uses the derives as machine-checked documentation ("this
//! struct is part of the stable result surface"), never for actual
//! serialization, so expanding to an empty token stream is sufficient and
//! keeps the heavyweight real `serde_derive` out of an offline build.

use proc_macro::TokenStream;

// `attributes(serde)` registers the `#[serde(...)]` helper attribute
// (e.g. `#[serde(transparent)]`) so annotated types keep compiling; the
// stub ignores the contents.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
