//! No-op `Serialize` / `Deserialize` derives for the vendored serde stub.
//!
//! The workspace uses the derives as machine-checked documentation ("this
//! struct is part of the stable result surface"), never for actual
//! serialization, so expanding to an empty token stream is sufficient and
//! keeps the heavyweight real `serde_derive` out of an offline build.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
