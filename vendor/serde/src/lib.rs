//! Offline vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on result structs purely
//! to mark them as stable, externally-visible data — no code path actually
//! serializes anything (there is no format crate in the dependency tree).
//! With crates.io unreachable in this build environment, this stub provides
//! marker traits and no-op derive macros so those annotations keep compiling.
//! If a real data format is ever needed, swap this out for the real crate by
//! editing `[workspace.dependencies]` in the root `Cargo.toml`.

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de> {}

// Derive macros live in a separate proc-macro crate, like real serde. The
// macro names intentionally shadow the trait names (separate namespaces).
pub use serde_derive::{Deserialize, Serialize};
