//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the slice of the `rand` 0.8 API that the
//! workspace consumes: [`rngs::SmallRng`], the [`RngCore`] / [`SeedableRng`] /
//! [`Rng`] traits, `gen::<f64>()` and `gen_range(0..n)`.
//!
//! Two deliberate properties:
//!
//! * **No entropy source.** There is no `thread_rng`, no `from_entropy`, no
//!   OS randomness. Every generator must be seeded explicitly, which is the
//!   workspace-wide determinism contract enforced by `cargo xtask lint`.
//! * **Stable streams.** `SmallRng` is xoshiro256++ seeded through the
//!   splitmix64 expander (the same construction `rand` 0.8 uses on 64-bit
//!   targets), so streams are bit-reproducible across platforms and builds.

/// Core trait for generators: raw 32/64-bit output.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Trait for generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array for `SmallRng`).
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via splitmix64, like `rand` 0.8.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // splitmix64 step
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable from the "standard" distribution of their type.
///
/// Only the instantiations the workspace uses are provided.
pub trait SampleStandard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits (matches `rand`'s
    /// `Standard` distribution for `f64`).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (rng.next_u64() >> 11) as f64 * SCALE
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        const SCALE: f32 = 1.0 / ((1u32 << 24) as f32);
        (rng.next_u32() >> 8) as f32 * SCALE
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Unbiased via rejection on the widened 64-bit stream.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return self.start.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if start == end {
                    return start;
                }
                if let Some(exclusive) = end.checked_add(1) {
                    (start..exclusive).sample_from(rng)
                } else {
                    // Full-width inclusive range: every value is fair game.
                    loop {
                        let v = rng.next_u64() as $t;
                        if v >= start {
                            return v;
                        }
                    }
                }
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone {
                        return ((self.start as i128) + (v % span) as i128) as $t;
                    }
                }
            }
        }
    )*};
}

impl_signed_range!(i64 => u64, i32 => u32, i16 => u16, isize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator: xoshiro256++ (what `rand` 0.8 uses on 64-bit).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0x6c62_272e_07bb_0142,
                    0x517c_c1b7_2722_0a95,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn f64_standard_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
