//! Offline vendored stand-in for `proptest`.
//!
//! Implements the slice of the proptest 1.x API that `tests/props.rs` uses —
//! the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, `Strategy` over
//! numeric ranges, and `collection::{vec, btree_set}` — on top of a
//! deterministic splitmix64 stream seeded from the test's module path.
//!
//! Differences from real proptest, on purpose:
//!
//! * **No shrinking.** A failing case panics with its assertion message; the
//!   case values are printed by the panic context instead of being minimized.
//! * **Deterministic by default.** Real proptest seeds from OS entropy and
//!   persists regressions to a file; here every run replays the same cases,
//!   which matches this workspace's bit-reproducibility contract (and is why
//!   `cargo xtask lint` can allow this crate in the dev graph).

use std::ops::Range;

pub mod test_runner {
    /// Deterministic splitmix64 stream for driving strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a), so each test gets its own stream
        /// and reruns replay the identical case sequence.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "cannot sample below 0");
            // Modulo bias is irrelevant for test-case generation.
            self.next_u64() % n
        }
    }
}

use test_runner::TestRng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values for one test parameter.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_uint_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (i128::from(self.end) - i128::from(self.start)) as u64;
                (i128::from(self.start) + i128::from(rng.below(span))) as $t
            }
        }
    )*};
}

impl_int_strategy!(i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy producing `Vec`s with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s with size drawn from `size` (the
    /// realized size may be smaller if duplicates collide, like proptest).
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = Strategy::sample(&self.size, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// In-place assertion: without shrinking there is nothing to unwind, so the
/// prop_* macros degrade to their std equivalents.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Mirrors `proptest::proptest!`: a block of `#[test] fn name(arg in strategy,
/// ...) { body }` items, each expanded to a deterministic multi-case loop.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            #[test]
            fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __name = concat!(module_path!(), "::", stringify!($name));
                let mut __rng = $crate::test_runner::TestRng::from_name(__name);
                for __case in 0..__config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut __rng); )+
                    { $body }
                }
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                fn $name ( $( $arg in $strategy ),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -5.0_f64..5.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5.0..5.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_len(data in crate::collection::vec(0.0_f64..1.0, 1..17)) {
            prop_assert!(!data.is_empty() && data.len() < 17);
            prop_assert!(data.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }

    #[test]
    fn reruns_replay_identical_cases() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
