//! End-to-end tests of the `ntv` command-line interface, including the
//! `serve` subcommand and the CLI/server shared `--json` wire format.

use std::io::BufRead;
use std::process::Command;

use ntv_simd::serve::client::request_once;
use ntv_simd::serve::json::{self, Value};

fn ntv(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ntv"))
        .args(args)
        .output()
        .expect("ntv binary runs")
}

/// A child `ntv serve` process, killed on drop.
struct ServeChild {
    child: std::process::Child,
    addr: std::net::SocketAddr,
}

impl ServeChild {
    fn spawn() -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_ntv"))
            .args(["serve", "--addr", "127.0.0.1:0"])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("serve spawns");
        // The first stdout line announces the bound address.
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("listen line");
        let addr = line
            .trim()
            .rsplit("http://")
            .next()
            .and_then(|a| a.parse().ok())
            .unwrap_or_else(|| panic!("no address in {line:?}"));
        Self { child, addr }
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn info_prints_device_summary() {
    let out = ntv(&["info", "90nm"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("90nm GP"));
    assert!(text.contains("FO4 delay"));
    assert!(text.contains("SS:"));
    assert!(text.contains("minimum energy"));
}

#[test]
fn drop_reports_percentage() {
    let out = ntv(&["drop", "22nm", "0.5"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("drop vs nominal"));
    assert!(text.contains('%'));
}

#[test]
fn margin_reports_millivolts() {
    let out = ntv(&["margin", "32nm", "0.6"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("mV margin"));
    assert!(text.contains("target"));
}

#[test]
fn spares_handles_unsolvable_points() {
    // 45nm at 0.5 V needs >128 spares (Table 1); the CLI must say so, not fail.
    let out = ntv(&["spares", "45nm", "0.5"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("more than 128 spares"), "{text}");
}

#[test]
fn quantile_reports_fo4_and_ns() {
    let out = ntv(&["quantile", "90nm", "0.6", "--spares", "2"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("FO4"), "{text}");
    assert!(text.contains("with 2 spares"), "{text}");
}

#[test]
fn cli_json_matches_the_serve_wire_format() {
    // One serialization path: `ntv quantile --json` must print byte-for-
    // byte what the HTTP service returns for the same query.
    let out = ntv(&["quantile", "45nm", "0.62", "--json"]);
    assert!(out.status.success());
    let cli_line = String::from_utf8(out.stdout)
        .expect("utf8")
        .trim()
        .to_string();

    let server = ServeChild::spawn();
    let response = request_once(
        server.addr,
        "POST",
        "/v1/query",
        r#"{"kind":"quantile","node":"45nm","vdd":0.62}"#,
    )
    .expect("server query");
    assert_eq!(response.status, 200, "{}", response.body);
    let parsed = json::parse(&response.body).expect("valid JSON");
    let results = parsed
        .get("results")
        .and_then(Value::as_arr)
        .expect("results");
    assert_eq!(results.len(), 1);
    // Re-render the parsed result? No — compare raw bytes: the results
    // array holds exactly the rendered object, so strip the envelope.
    let envelope = format!(r#"{{"results":[{cli_line}]}}"#);
    assert_eq!(response.body, envelope, "CLI and server bytes must match");
}

#[test]
fn serve_answers_health_and_stats() {
    let server = ServeChild::spawn();
    let health = request_once(server.addr, "GET", "/healthz", "").expect("healthz");
    assert_eq!(
        (health.status, health.body.as_str()),
        (200, r#"{"ok":true}"#)
    );
    let stats = request_once(server.addr, "GET", "/stats", "").expect("stats");
    assert_eq!(stats.status, 200);
    assert!(stats.body.contains("\"cache\""), "{}", stats.body);
}

#[test]
fn usage_on_bad_input() {
    for args in [&[][..], &["frobnicate"][..], &["drop", "65nm", "0.5"][..]] {
        let out = ntv(args);
        assert!(!out.status.success(), "args {args:?} should fail");
        let err = String::from_utf8(out.stderr).expect("utf8");
        assert!(!err.is_empty());
    }
    // Out-of-range voltage.
    let out = ntv(&["drop", "90nm", "9.9"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .expect("utf8")
        .contains("invalid supply voltage"));
}
