//! End-to-end tests of the `ntv` command-line interface.

use std::process::Command;

fn ntv(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ntv"))
        .args(args)
        .output()
        .expect("ntv binary runs")
}

#[test]
fn info_prints_device_summary() {
    let out = ntv(&["info", "90nm"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("90nm GP"));
    assert!(text.contains("FO4 delay"));
    assert!(text.contains("SS:"));
    assert!(text.contains("minimum energy"));
}

#[test]
fn drop_reports_percentage() {
    let out = ntv(&["drop", "22nm", "0.5"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("drop vs nominal"));
    assert!(text.contains('%'));
}

#[test]
fn margin_reports_millivolts() {
    let out = ntv(&["margin", "32nm", "0.6"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("mV margin"));
    assert!(text.contains("target"));
}

#[test]
fn spares_handles_unsolvable_points() {
    // 45nm at 0.5 V needs >128 spares (Table 1); the CLI must say so, not fail.
    let out = ntv(&["spares", "45nm", "0.5"]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8");
    assert!(text.contains("more than 128 spares"), "{text}");
}

#[test]
fn usage_on_bad_input() {
    for args in [&[][..], &["frobnicate"][..], &["drop", "65nm", "0.5"][..]] {
        let out = ntv(args);
        assert!(!out.status.success(), "args {args:?} should fail");
        let err = String::from_utf8(out.stderr).expect("utf8");
        assert!(!err.is_empty());
    }
    // Out-of-range voltage.
    let out = ntv(&["drop", "90nm", "9.9"]);
    assert!(!out.status.success());
    assert!(String::from_utf8(out.stderr)
        .expect("utf8")
        .contains("invalid supply voltage"));
}
