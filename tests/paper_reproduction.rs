//! End-to-end reproduction checks: the pivotal quantitative claims of the
//! paper must hold when the experiments are run through the public API.
//! (The full-size regeneration lives in `cargo run -p ntv-bench --bin
//! repro`; these use reduced sample counts.)

use ntv_bench::experiments::{fig4, fig7, placement, table1, table2, table3};
use ntv_simd::device::TechNode;
use ntv_simd::units::Volts;

const SAMPLES: usize = 2_500;
const SEED: u64 = 99;

#[test]
fn headline_performance_drops() {
    let r = fig4::run(SAMPLES, SEED);
    // Paper §3.2: "only 5% at 0.5V in 90nm GP" and "climbs to 18% in 22nm".
    let d90 = r.drop(TechNode::Gp90, 0.5).expect("swept");
    let d22 = r.drop(TechNode::PtmHp22, 0.5).expect("swept");
    assert!((0.03..0.08).contains(&d90), "90nm: {d90}");
    assert!((0.12..0.26).contains(&d22), "22nm: {d22}");
    // "Thus complex architectural enhancements are not needed" — the 90nm
    // mid-NTV drops are small single digits.
    let d90_06 = r.drop(TechNode::Gp90, 0.6).expect("swept");
    assert!(d90_06 < 0.03, "90nm @0.6V: {d90_06}");
}

#[test]
fn duplication_works_at_90nm_but_not_scaled_nodes_at_half_volt() {
    let r = table1::run(SAMPLES, SEED);
    // Paper conclusion: "in 90nm, timing errors can be handled by only
    // structural duplications".
    for vdd in [0.5, 0.55, 0.6, 0.65, 0.7] {
        assert!(
            r.cell(TechNode::Gp90, vdd).expect("cell").spares.is_some(),
            "90nm solvable at {vdd} V"
        );
    }
    // But at 0.5 V the scaled nodes blow the 128-spare budget.
    for node in [TechNode::Gp45, TechNode::PtmHp32, TechNode::PtmHp22] {
        assert!(r.cell(node, 0.5).expect("cell").spares.is_none(), "{node}");
    }
}

#[test]
fn margins_are_millivolt_scale_and_ordered() {
    let r = table2::run(SAMPLES, SEED);
    for c in &r.cells {
        let mv = c.solution.margin.get() * 1000.0;
        assert!((0.3..40.0).contains(&mv), "margin {mv} mV at {:?}", c.node);
    }
    // 90nm needs only single-digit millivolts; 45nm several times more.
    let m90 = r.cell(TechNode::Gp90, 0.5).expect("cell").solution.margin;
    let m45 = r.cell(TechNode::Gp45, 0.5).expect("cell").solution.margin;
    assert!(m90 < Volts(0.010), "90nm: {m90}");
    assert!(m45 > 2.0 * m90, "45nm {m45} vs 90nm {m90}");
}

#[test]
fn combined_technique_is_cheapest_at_45nm_600mv() {
    // The paper's concluding claim: "a combination of structural
    // duplication and voltage margining results in a solution with the
    // lowest power overhead" for scaled nodes.
    let r = table3::run(SAMPLES, SEED);
    assert!(r.best.spares > 0, "{:?}", r.best);
    assert!(r.best.margin > Volts::ZERO);
    let pure_margin = &r.choices[0];
    let heavy_dup = r.choices.last().expect("choices");
    assert!(r.best.power_overhead < pure_margin.power_overhead);
    assert!(r.best.power_overhead < heavy_dup.power_overhead);
}

#[test]
fn technique_crossover_matches_section_4_4() {
    let r = fig7::run(SAMPLES, SEED);
    use ntv_simd::core::compare::Technique;
    // "Structural duplication outperforms voltage margining in high
    // near-threshold voltage regions (0.6-0.7V)" — true for 90nm.
    let p90 = &r.panels[0];
    let dup_wins_high = p90
        .points
        .iter()
        .filter(|p| p.vdd >= Volts(0.6))
        .any(|p| p.preferred() == Technique::Duplication);
    assert!(dup_wins_high);
    // "As technology scales and supply voltage decreases, the voltage
    // margining scheme starts to outperform" — 45nm at 0.5-0.55 V.
    let p45 = &r.panels[1];
    for p in p45.points.iter().filter(|p| p.vdd <= Volts(0.55)) {
        assert_eq!(p.preferred(), Technique::VoltageMargining, "{p:?}");
    }
}

#[test]
fn global_sparing_beats_local_and_bypass_works() {
    let r = placement::run(SEED);
    for row in &r.rows {
        assert!(row.global >= row.local);
    }
    assert!(r.demo.repaired);
    assert!(r.demo.output_correct);
}
