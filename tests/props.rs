//! Property-based tests (proptest) on the workspace's core data
//! structures and invariants.

// Exact float equality is the property under test here: min/max/kth-element
// must return a bitwise copy of an input sample, not a recomputed value.
#![allow(clippy::float_cmp)]

use proptest::prelude::*;

use ntv_simd::circuit::chain::ChainMc;
use ntv_simd::core::placement::{binomial_cdf, repair_probability, SparePlacement};
use ntv_simd::device::{DeviceParams, TechModel, TechNode};
use ntv_simd::mc::{normal, order, Quantiles, StreamRng, Summary};
use ntv_simd::soda::kernels::{self, golden};
use ntv_simd::soda::pe::ProcessingElement;
use ntv_simd::soda::xram::{LaneMap, ShuffleConfig};
use ntv_simd::units::Volts;

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1.0e6_f64..1.0e6, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normal_quantile_round_trips(p in 1e-9_f64..1.0 - 1e-9) {
        let x = normal::quantile(p);
        let back = normal::cdf(x);
        prop_assert!((back - p).abs() < 1e-9, "p={p} x={x} back={back}");
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(data in finite_vec(1..200), a in 0.0_f64..1.0, b in 0.0_f64..1.0) {
        let q = Quantiles::from_samples(data.clone());
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(q.quantile(lo) <= q.quantile(hi) + 1e-12);
        prop_assert!(q.quantile(0.0) <= q.quantile(1.0));
        let min = data.iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(q.min(), min);
        prop_assert_eq!(q.max(), max);
    }

    #[test]
    fn summary_merge_equals_sequential(data in finite_vec(2..200), split in 0usize..200) {
        let split = split.min(data.len());
        let whole: Summary = data.iter().copied().collect();
        let mut left: Summary = data[..split].iter().copied().collect();
        let right: Summary = data[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((left.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance()));
    }

    #[test]
    fn kth_smallest_matches_sorting(data in finite_vec(1..100), k in 0usize..100) {
        let k = k.min(data.len() - 1);
        let got = order::kth_smallest(&data, k);
        let mut sorted = data.clone();
        sorted.sort_by(f64::total_cmp);
        prop_assert_eq!(got, sorted[k]);
    }

    #[test]
    fn rotation_shuffles_invert(shift in 0usize..128, seed in 0u64..1000) {
        let mut rng = StreamRng::from_seed(seed);
        let data: Vec<i16> = (0..128).map(|_| (rng.uniform() * 100.0) as i16).collect();
        let fwd = ShuffleConfig::rotate(128, shift);
        let back = ShuffleConfig::rotate(128, (128 - shift % 128) % 128);
        let round = back.apply(&fwd.apply(&data));
        prop_assert_eq!(round, data);
    }

    #[test]
    fn lane_map_is_injective_and_skips_faulty(
        faulty in proptest::collection::btree_set(0usize..136, 0..8)
    ) {
        let faulty: Vec<usize> = faulty.into_iter().collect();
        let map = LaneMap::with_faulty(128, 136, &faulty).expect("at most 8 faults fit 8 spares");
        let mut seen = std::collections::HashSet::new();
        for l in 0..128 {
            let p = map.physical(l);
            prop_assert!(p < 136);
            prop_assert!(!faulty.contains(&p), "logical {l} mapped to faulty {p}");
            prop_assert!(seen.insert(p), "physical lane {p} used twice");
        }
    }

    #[test]
    fn binomial_cdf_is_monotone_in_k(n in 1u32..200, p in 0.0_f64..1.0) {
        let mut prev = 0.0;
        for k in 0..=n.min(40) {
            let c = binomial_cdf(n, p, k);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&c));
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
    }

    #[test]
    fn global_sparing_never_loses_to_local(
        p_fail in 0.0_f64..0.5,
        spares_per_cluster in 1u32..3,
    ) {
        let cluster = SparePlacement::Local { cluster_size: 8, spares_per_cluster };
        let total = cluster.total_spares(128);
        let global = SparePlacement::Global { spares: total };
        let pl = repair_probability(cluster, 128, p_fail);
        let pg = repair_probability(global, 128, p_fail);
        prop_assert!(pg >= pl - 1e-12, "p={p_fail}: global {pg} < local {pl}");
    }

    #[test]
    fn vector_add_kernel_matches_golden(seed in 0u64..500) {
        let mut rng = StreamRng::from_seed(seed);
        let a: Vec<i16> = (0..128).map(|_| (rng.uniform() * 65535.0 - 32768.0) as i16).collect();
        let b: Vec<i16> = (0..128).map(|_| (rng.uniform() * 65535.0 - 32768.0) as i16).collect();
        let mut pe = ProcessingElement::new();
        let got = kernels::vector_add(&mut pe, &a, &b).expect("runs");
        prop_assert_eq!(got, golden::vector_add(&a, &b));
    }

    #[test]
    fn fir_kernel_matches_golden(seed in 0u64..200, taps in 1usize..8) {
        let mut rng = StreamRng::from_seed(seed);
        let signal: Vec<i16> = (0..256).map(|_| (rng.uniform() * 200.0 - 100.0) as i16).collect();
        let coeffs: Vec<i16> = (0..taps).map(|_| (rng.uniform() * 10.0 - 5.0) as i16).collect();
        let mut pe = ProcessingElement::new();
        let got = kernels::fir(&mut pe, &signal, &coeffs, 2).expect("runs");
        let want = golden::fir(&signal, &coeffs, 2);
        prop_assert_eq!(&got[..], &want[..got.len()]);
    }

    #[test]
    fn device_delay_monotone_in_voltage_and_vth(
        node_idx in 0usize..4,
        v_lo in 0.40_f64..0.70,
        dv in 0.01_f64..0.10,
    ) {
        let tech = TechModel::new(TechNode::ALL[node_idx]);
        // Delay falls with voltage...
        prop_assert!(tech.fo4_delay_ps(Volts(v_lo + dv)) < tech.fo4_delay_ps(Volts(v_lo)));
        // ...and on-current falls with threshold voltage.
        let p = tech.params();
        prop_assert!(tech.on_current(Volts(v_lo), p.vth0 + Volts(0.02)) < tech.on_current(Volts(v_lo), p.vth0));
    }

    #[test]
    fn sigma_scale_scales_measured_variation(scale in 0.25_f64..2.0) {
        let base = TechModel::new(TechNode::Gp90);
        let scaled = TechModel::from_params(
            DeviceParams::builder(TechNode::Gp90).sigma_scale(scale).build().unwrap(),
        );
        let mut rng_a = StreamRng::from_seed(10);
        let mut rng_b = StreamRng::from_seed(10);
        let sa = ChainMc::new(&base, 10).summary(Volts(0.6), 800, &mut rng_a);
        let sb = ChainMc::new(&scaled, 10).summary(Volts(0.6), 800, &mut rng_b);
        let ratio = sb.cv() / sa.cv();
        // cv scales roughly linearly with sigma (first order).
        prop_assert!((ratio / scale - 1.0).abs() < 0.35, "scale {scale}: ratio {ratio}");
    }

    #[test]
    fn sample_max_stochastically_dominates_in_n(seed in 0u64..300, n in 2usize..500) {
        // With common random numbers, max of n is >= max of 1 pathwise.
        let mut rng_a = StreamRng::from_seed(seed);
        let mut rng_b = StreamRng::from_seed(seed);
        let one = order::sample_max_normal(&mut rng_a, 1, 0.0, 1.0);
        let many = order::sample_max_normal(&mut rng_b, n, 0.0, 1.0);
        prop_assert!(many >= one - 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn path_distribution_quantile_survival_roundtrip(
        node_idx in 0usize..4,
        vdd in 0.5_f64..0.8,
        g_exp in 1.0_f64..6.0,
    ) {
        use ntv_simd::core::engine::PathDistribution;
        let tech = TechModel::new(TechNode::ALL[node_idx]);
        let dist = PathDistribution::build(&tech, Volts(vdd), 50);
        // survival is monotone non-increasing and bounded.
        let m = dist.mean_ps();
        let mut prev = 1.0;
        for i in 0..20 {
            let x = m * (0.8 + 0.02 * f64::from(i));
            let s = dist.survival(x);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!(s <= prev + 1e-12);
            prev = s;
        }
        // A sampled max of 10^g_exp paths lies where its survival target says.
        let n = 10f64.powf(g_exp) as usize;
        let mut rng = StreamRng::from_seed(7);
        let x = dist.sample_max(n.max(1), &mut rng);
        prop_assert!(x.is_finite() && x > 0.0);
        prop_assert!(dist.survival(x) <= 1.0);
    }

    #[test]
    fn histogram_conserves_every_sample(data in proptest::collection::vec(-1.0e3_f64..1.0e3, 1..300), bins in 1usize..40) {
        use ntv_simd::mc::Histogram;
        let h = Histogram::from_samples(&data, bins);
        prop_assert_eq!(h.total() as usize, data.len());
        prop_assert_eq!(h.underflow(), 0);
        prop_assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn memory_stage_unstage_roundtrip(rows in 1usize..8, seed in 0u64..100, base in 0usize..200) {
        use ntv_simd::soda::memory::SimdMemory;
        let mut rng = StreamRng::from_seed(seed);
        let data: Vec<i16> = (0..rows * 128)
            .map(|_| (rng.uniform() * 65535.0 - 32768.0) as i16)
            .collect();
        let mut mem = SimdMemory::new();
        if base + rows <= 256 {
            mem.stage(base, &data).expect("fits");
            prop_assert_eq!(mem.unstage(base, rows).expect("fits"), data);
        } else {
            prop_assert!(mem.stage(base, &data).is_err());
        }
    }

    #[test]
    fn shuffle_composition_is_associative(s1 in 0usize..128, s2 in 0usize..128, seed in 0u64..100) {
        let mut rng = StreamRng::from_seed(seed);
        let data: Vec<i16> = (0..128).map(|_| (rng.uniform() * 1000.0) as i16).collect();
        let a = ShuffleConfig::rotate(128, s1);
        let b = ShuffleConfig::rotate(128, s2);
        let combined = ShuffleConfig::rotate(128, (s1 + s2) % 128);
        prop_assert_eq!(b.apply(&a.apply(&data)), combined.apply(&data));
    }

    #[test]
    fn fft_is_approximately_linear(seed in 0u64..50) {
        use ntv_simd::soda::pe::ProcessingElement;
        let mut rng = StreamRng::from_seed(seed);
        let a: Vec<i16> = (0..128).map(|_| (rng.uniform() * 8000.0 - 4000.0) as i16).collect();
        let b: Vec<i16> = (0..128).map(|_| (rng.uniform() * 8000.0 - 4000.0) as i16).collect();
        let sum: Vec<i16> = a.iter().zip(&b).map(|(&x, &y)| x.saturating_add(y)).collect();
        let zeros = vec![0i16; 128];

        let mut pe = ProcessingElement::new();
        let (fa, _) = kernels::fft128(&mut pe, &a, &zeros).expect("runs");
        let mut pe = ProcessingElement::new();
        let (fb, _) = kernels::fft128(&mut pe, &b, &zeros).expect("runs");
        let mut pe = ProcessingElement::new();
        let (fs, _) = kernels::fft128(&mut pe, &sum, &zeros).expect("runs");
        for k in 0..128 {
            let lin = i32::from(fa[k]) + i32::from(fb[k]);
            prop_assert!(
                (lin - i32::from(fs[k])).abs() <= 24,
                "bin {}: {} + {} vs {}", k, fa[k], fb[k], fs[k]
            );
        }
    }

    #[test]
    fn corners_bracket_monte_carlo_systematics(node_idx in 0usize..4, vdd in 0.5_f64..0.9) {
        use ntv_simd::device::Corner;
        let tech = TechModel::new(TechNode::ALL[node_idx]);
        let ff = Corner::FastFast.fo4_delay_ps(&tech, Volts(vdd));
        let ss = Corner::SlowSlow.fo4_delay_ps(&tech, Volts(vdd));
        let mut rng = StreamRng::from_seed(3);
        // 3-sigma corners bracket virtually all sampled systematic chips.
        for _ in 0..100 {
            let chip = tech.sample_chip(&mut rng);
            let d = tech.gate_delay_ps(Volts(vdd), &chip, &ntv_simd::device::GateSample::nominal());
            prop_assert!(d > ff * 0.98 && d < ss * 1.02, "d={d} outside [{ff}, {ss}]");
        }
    }
}
