//! Cross-crate engine validation: the fast closed-form machinery used by
//! the architecture experiments must agree with the exact gate-level
//! Monte Carlo it abstracts.

use ntv_simd::circuit::chain::ChainMc;
use ntv_simd::circuit::path_model::PathModel;
use ntv_simd::core::engine::{PathDistribution, VariationMode};
use ntv_simd::core::{DatapathConfig, DatapathEngine};
use ntv_simd::device::{TechModel, TechNode};
use ntv_simd::mc::{Ecdf, StreamRng, Summary};
use ntv_simd::units::Volts;

#[test]
fn path_distribution_matches_gate_level_chain_across_nodes() {
    // The precomputed unconditional CDF vs brute-force cross-chip chains.
    for node in [TechNode::Gp90, TechNode::PtmHp22] {
        let tech = TechModel::new(node);
        for vdd in [Volts(0.5), tech.nominal_vdd()] {
            let dist = PathDistribution::build(&tech, vdd, 50);
            let chain = ChainMc::new(&tech, 50);
            let mut rng = StreamRng::from_seed(1);
            let mc = chain.summary(vdd, 5_000, &mut rng);
            assert!(
                (dist.mean_ps() / mc.mean() - 1.0).abs() < 0.015,
                "{node} @{vdd}: mean {} vs {}",
                dist.mean_ps(),
                mc.mean()
            );
            assert!(
                (dist.std_ps() / mc.std_dev() - 1.0).abs() < 0.08,
                "{node} @{vdd}: sigma {} vs {}",
                dist.std_ps(),
                mc.std_dev()
            );
        }
    }
}

#[test]
fn skewed_sampler_reproduces_the_mixture_cdf() {
    let tech = TechModel::new(TechNode::Gp45);
    let dist = PathDistribution::build(&tech, Volts(0.55), 50);
    let mut rng = StreamRng::from_seed(2);
    let samples: Vec<f64> = (0..20_000).map(|_| dist.sample(&mut rng)).collect();
    let ecdf = Ecdf::from_samples(samples);
    // KS distance between sampled and analytic survival.
    let d = ecdf.ks_distance_to(|x| 1.0 - dist.survival(x));
    assert!(d < 0.015, "KS distance {d}");
}

#[test]
fn conditional_moments_match_on_chip_monte_carlo() {
    let tech = TechModel::new(TechNode::PtmHp32);
    let model = PathModel::new(&tech, 50);
    let mut rng = StreamRng::from_seed(3);
    for _ in 0..3 {
        let chip = tech.sample_chip(&mut rng);
        let m = model.conditional_moments(Volts(0.6), &chip);
        let chain = ChainMc::new(&tech, 50);
        let mc: Summary = (0..8_000)
            .map(|_| chain.sample_on_chip_ps(Volts(0.6), &chip, &mut rng))
            .collect();
        assert!((m.mean_ps / mc.mean() - 1.0).abs() < 0.01);
        assert!((m.std_ps / mc.std_dev() - 1.0).abs() < 0.06);
    }
}

#[test]
fn paper_normal_and_skewed_modes_share_first_two_moments() {
    let tech = TechModel::new(TechNode::Gp90);
    let normal = DatapathEngine::with_mode(
        &tech,
        DatapathConfig::new(1, 1, 50),
        VariationMode::PaperNormal,
    );
    let skewed = DatapathEngine::with_mode(
        &tech,
        DatapathConfig::new(1, 1, 50),
        VariationMode::SkewedIid,
    );
    let mut rng_a = StreamRng::from_seed(4);
    let mut rng_b = StreamRng::from_seed(5);
    let a: Summary = (0..20_000)
        .map(|_| normal.sample_chip_delay_fo4(Volts(0.55), &mut rng_a))
        .collect();
    let b: Summary = (0..20_000)
        .map(|_| skewed.sample_chip_delay_fo4(Volts(0.55), &mut rng_b))
        .collect();
    assert!((a.mean() / b.mean() - 1.0).abs() < 0.01);
    assert!((a.std_dev() / b.std_dev() - 1.0).abs() < 0.05);
    // ...but the skewed mode carries right skew (mild at 90 nm, strong at
    // scaled nodes) while the normal fit has none.
    assert!(b.skewness() > 0.04, "skewed mode skewness {}", b.skewness());
    assert!(
        a.skewness().abs() < 0.05,
        "normal mode skewness {}",
        a.skewness()
    );

    let tech22 = TechModel::new(TechNode::PtmHp22);
    let skew22 = DatapathEngine::with_mode(
        &tech22,
        DatapathConfig::new(1, 1, 50),
        VariationMode::SkewedIid,
    );
    let mut rng_c = StreamRng::from_seed(6);
    let c: Summary = (0..20_000)
        .map(|_| skew22.sample_chip_delay_fo4(Volts(0.5), &mut rng_c))
        .collect();
    assert!(c.skewness() > 0.3, "22nm @0.5V skewness {}", c.skewness());
}

#[test]
fn tail_shape_matters_for_extreme_maxima() {
    // The ablation headline: at 22nm/0.5V, the exact skewed tail makes the
    // 99% point of the max-of-12800 substantially worse than the paper's
    // normal fit predicts.
    let tech = TechModel::new(TechNode::PtmHp22);
    let config = DatapathConfig::paper_default();
    let normal = DatapathEngine::with_mode(&tech, config, VariationMode::PaperNormal);
    let skewed = DatapathEngine::with_mode(&tech, config, VariationMode::SkewedIid);
    let mut rng = StreamRng::from_seed(6);
    let qn = normal
        .chip_delay_distribution(Volts(0.5), 3_000, &mut rng)
        .q99_fo4();
    let qs = skewed
        .chip_delay_distribution(Volts(0.5), 3_000, &mut rng)
        .q99_fo4();
    assert!(qs > 1.05 * qn, "skewed q99 {qs} vs normal q99 {qn}");
}

#[test]
fn hierarchical_mode_weakens_spares() {
    // With correlated (chip/region) variation, dropping slow lanes cannot
    // trim the shared component; the i.i.d. model is more optimistic about
    // duplication. Quantified here, used by the ablation bench.
    use ntv_simd::core::duplication::DuplicationStudy;
    use ntv_simd::core::perf;

    let tech = TechModel::new(TechNode::Gp90);
    let config = DatapathConfig::paper_default();
    let samples = 2_500;

    let spares_for = |mode: VariationMode| {
        let engine = DatapathEngine::with_mode(&tech, config, mode);
        let study = DuplicationStudy::new(&engine);
        let baseline =
            perf::baseline_q99_fo4(&engine, samples, 7, ntv_simd::core::Executor::default());
        let matrix = study.sample_matrix(Volts(0.55), 128, samples, 7);
        study.required_spares(&matrix, baseline)
    };

    let iid = spares_for(VariationMode::PaperNormal).expect("solvable in iid mode");
    // Err means even >128 spares cannot fix correlated slowness.
    if let Ok(h) = spares_for(VariationMode::Hierarchical) {
        assert!(h >= iid, "hierarchical {h} vs iid {iid}");
    }
}

#[test]
fn fo4_unit_matches_paper_definition() {
    // FO4 unit = simulated chain mean / 50: 441 ps at 0.5 V in 90 nm.
    let tech = TechModel::new(TechNode::Gp90);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    let unit = engine.fo4_unit_ps(Volts(0.5));
    assert!((unit / 441.0 - 1.0).abs() < 0.1, "FO4 unit {unit} ps");
}

#[test]
fn common_random_numbers_correlate_across_voltages() {
    // The margining bisection relies on chip draws being shared across
    // candidate voltages: same seed => near-perfectly correlated chip
    // delays, so q99 differences are dominated by the voltage, not noise.
    let tech = TechModel::new(TechNode::Gp45);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    let draw = |vdd: Volts| -> Vec<f64> {
        let mut rng = StreamRng::from_seed_and_label(9, "crn-check");
        (0..2_000)
            .map(|_| engine.sample_chip_delay_fo4(vdd, &mut rng))
            .collect()
    };
    let a = draw(Volts(0.600));
    let b = draw(Volts(0.605));
    let r = ntv_simd::mc::stats::pearson(&a, &b);
    assert!(r > 0.99, "CRN correlation {r}");
    // Independent seeds are uncorrelated by comparison.
    let mut rng = StreamRng::from_seed_and_label(10, "other");
    let c: Vec<f64> = (0..2_000)
        .map(|_| engine.sample_chip_delay_fo4(Volts(0.605), &mut rng))
        .collect();
    assert!(ntv_simd::mc::stats::pearson(&a, &c).abs() < 0.1);
}
