//! Thread-count invariance: parallelism must never change results.
//!
//! Every Monte-Carlo draw is index-addressed (sample *i* is a pure function
//! of `(seed, stream label, i)`), so the [`Executor`]'s chunk-and-merge
//! schedule produces bit-identical output for **any** worker count. This
//! file pins that contract end-to-end — raw sample batches, experiment
//! tables and solver outputs at 1, 2 and 8 threads — which is what makes
//! `repro --threads N` a pure speed knob.

use ntv_bench::experiments::{fig2, fig4, fig6, table1};
use ntv_mc::CounterRng;
use ntv_simd::core::margining::MarginStudy;
use ntv_simd::core::{DatapathConfig, DatapathEngine, Executor};
use ntv_simd::device::{TechModel, TechNode};
use ntv_simd::units::Volts;

const SAMPLES: usize = 600;
const THREADS: [usize; 3] = [1, 2, 8];

/// Exact float equality is intended here: the executor contract is
/// bit-identity, not tolerance.
fn assert_bits(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} vs {b}");
}

#[test]
fn raw_sample_batches_are_thread_invariant() {
    let tech = TechModel::new(TechNode::Gp45);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    let stream = CounterRng::new(2012, "invariance");
    let reference = engine.sample_batch(Volts(0.55), &stream, 0..2_000, Executor::serial());
    for threads in THREADS {
        let batch = engine.sample_batch(Volts(0.55), &stream, 0..2_000, Executor::new(threads));
        assert_eq!(batch.len(), reference.len());
        for (i, (a, b)) in reference.iter().zip(&batch).enumerate() {
            assert_bits(*a, *b, &format!("sample {i} at {threads} threads"));
        }
    }
}

#[test]
fn fig2_curves_are_thread_invariant() {
    let reference = fig2::run_with(SAMPLES, 7, Executor::serial());
    for threads in THREADS {
        let run = fig2::run_with(SAMPLES, 7, Executor::new(threads));
        for (ca, cb) in reference.curves.iter().zip(&run.curves) {
            assert_eq!(ca.node, cb.node);
            for (&(va, sa), &(vb, sb)) in ca.points.iter().zip(&cb.points) {
                assert_bits(va, vb, "voltage grid");
                assert_bits(
                    sa,
                    sb,
                    &format!("fig2 {} @{va} V, {threads} threads", ca.node),
                );
            }
        }
    }
}

#[test]
fn fig4_performance_drops_are_thread_invariant() {
    let reference = fig4::run_with(SAMPLES, 7, Executor::serial());
    for threads in THREADS {
        let run = fig4::run_with(SAMPLES, 7, Executor::new(threads));
        for (ca, cb) in reference.curves.iter().zip(&run.curves) {
            for (pa, pb) in ca.points.iter().zip(&cb.points) {
                assert_bits(
                    pa.q99_fo4,
                    pb.q99_fo4,
                    &format!("fig4 {} q99 @{} V, {threads} threads", ca.node, pa.vdd),
                );
                assert_bits(pa.drop, pb.drop, "fig4 drop");
            }
        }
    }
}

#[test]
fn fig6_distributions_are_thread_invariant() {
    let reference = fig6::run_with(SAMPLES, 5, Executor::serial());
    for threads in THREADS {
        let run = fig6::run_with(SAMPLES, 5, Executor::new(threads));
        assert_bits(reference.target_ns, run.target_ns, "fig6 target");
        for (ca, cb) in reference
            .voltage_curves
            .iter()
            .chain(&reference.spare_curves)
            .zip(run.voltage_curves.iter().chain(&run.spare_curves))
        {
            assert_eq!(ca.label, cb.label);
            assert_bits(
                ca.q99_ns,
                cb.q99_ns,
                &format!("fig6 `{}` q99, {threads} threads", ca.label),
            );
        }
    }
}

#[test]
fn table1_spare_solutions_are_thread_invariant() {
    let reference = table1::run_with(SAMPLES, 11, Executor::serial());
    for threads in THREADS {
        let run = table1::run_with(SAMPLES, 11, Executor::new(threads));
        for (ca, cb) in reference.cells.iter().zip(&run.cells) {
            assert_eq!(
                ca.spares, cb.spares,
                "table1 {} @{} V, {threads} threads",
                ca.node, ca.vdd
            );
        }
    }
}

#[test]
fn margin_solver_bisection_is_thread_invariant() {
    // The bisection takes data-dependent branches, so this checks that
    // common random numbers (not just batch merging) survive parallelism.
    let tech = TechModel::new(TechNode::PtmHp22);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    let reference = MarginStudy::new(&engine)
        .with_executor(Executor::serial())
        .solve(Volts(0.55), SAMPLES, 3);
    for threads in THREADS {
        let sol = MarginStudy::new(&engine)
            .with_executor(Executor::new(threads))
            .solve(Volts(0.55), SAMPLES, 3);
        assert_bits(
            reference.margin.get(),
            sol.margin.get(),
            &format!("margin at {threads} threads"),
        );
        assert_bits(reference.power_overhead, sol.power_overhead, "power");
    }
}
