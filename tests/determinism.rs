//! Reproducibility: every experiment is a pure function of (samples, seed).
//!
//! Bit-identical reruns are what make EXPERIMENTS.md auditable and the
//! common-random-number solvers sound, so this is tested end-to-end at the
//! experiment level, not just for raw RNG streams.

use ntv_bench::experiments::{fig4, fig5, placement, table2, table3};
use ntv_simd::device::TechNode;

const SAMPLES: usize = 500;

#[test]
fn fig4_is_deterministic() {
    let a = fig4::run(SAMPLES, 7);
    let b = fig4::run(SAMPLES, 7);
    for (ca, cb) in a.curves.iter().zip(&b.curves) {
        assert_eq!(ca.node, cb.node);
        for (pa, pb) in ca.points.iter().zip(&cb.points) {
            assert_eq!(pa.q99_fo4.to_bits(), pb.q99_fo4.to_bits());
            assert_eq!(pa.drop.to_bits(), pb.drop.to_bits());
        }
    }
    // A different seed perturbs the Monte-Carlo estimates.
    let c = fig4::run(SAMPLES, 8);
    let same = a
        .curves
        .iter()
        .zip(&c.curves)
        .flat_map(|(x, y)| x.points.iter().zip(&y.points))
        .all(|(p, q)| p.q99_fo4.to_bits() == q.q99_fo4.to_bits());
    assert!(!same, "seed must matter");
}

#[test]
fn fig5_matching_spares_is_deterministic() {
    let a = fig5::run(SAMPLES, 3);
    let b = fig5::run(SAMPLES, 3);
    assert_eq!(a.matching_spares, b.matching_spares);
    assert_eq!(a.baseline_q99_fo4.to_bits(), b.baseline_q99_fo4.to_bits());
}

#[test]
fn table2_margins_are_deterministic() {
    let a = table2::run(SAMPLES, 11);
    let b = table2::run(SAMPLES, 11);
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(
            ca.solution.margin.get().to_bits(),
            cb.solution.margin.get().to_bits()
        );
    }
    // And a spot-check value exists for every node.
    for node in TechNode::ALL {
        assert!(a.cell(node, 0.6).is_some());
    }
}

#[test]
fn table3_best_choice_is_deterministic() {
    let a = table3::run(SAMPLES, 13);
    let b = table3::run(SAMPLES, 13);
    assert_eq!(a.best.spares, b.best.spares);
    assert_eq!(a.best.margin.get().to_bits(), b.best.margin.get().to_bits());
}

#[test]
fn placement_demo_is_deterministic() {
    let a = placement::run(17);
    let b = placement::run(17);
    assert_eq!(a.demo.faulty, b.demo.faulty);
    assert_eq!(a.demo.repaired, b.demo.repaired);
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.local.to_bits(), rb.local.to_bits());
        assert_eq!(ra.global.to_bits(), rb.global.to_bits());
    }
}
