//! Cross-crate integration: architecture-level variation model → fault
//! model → Diet SODA functional simulator, under all error policies.

use ntv_simd::core::{DatapathConfig, DatapathEngine};
use ntv_simd::device::{TechModel, TechNode};
use ntv_simd::mc::StreamRng;
use ntv_simd::soda::kernels::{self, golden};
use ntv_simd::soda::pe::{EnergyConfig, ProcessingElement};
use ntv_simd::soda::{ErrorPolicy, FaultModel, SIMD_WIDTH};
use ntv_simd::units::Volts;

/// Build a fault model for a chip that has a handful of hard-faulty lanes:
/// 90 nm at 0.55 V, clocked at the lane-delay quantile where ~3 of the
/// 128+spares lanes miss timing on a typical chip.
fn faulty_chip(spares: usize) -> FaultModel {
    let tech = TechModel::new(TechNode::Gp90);
    let engine = DatapathEngine::new(&tech, DatapathConfig::paper_default());
    let mut rng = StreamRng::from_seed(17);
    let lanes = engine.sample_lane_delays_fo4(Volts(0.55), 4_000, &mut rng);
    let q = ntv_simd::mc::Quantiles::from_samples(lanes);
    let t_clk_fo4 = q.quantile(1.0 - 3.0 / (128.0 + spares as f64));
    let t_clk_ns = t_clk_fo4 * engine.fo4_unit_ps(Volts(0.55)) / 1000.0;
    loop {
        let f = FaultModel::from_engine(&engine, Volts(0.55), t_clk_ns, spares, 0.0, &mut rng);
        let faults = f.faulty_lanes(0.5).len();
        if faults >= 1 && faults <= spares {
            return f;
        }
    }
}

fn run_pipeline(pe: &mut ProcessingElement) -> (Vec<Vec<i16>>, Vec<i16>) {
    let image: Vec<Vec<i16>> = (0..5)
        .map(|r| {
            (0..128)
                .map(|c| ((r * 101 + c * 13) % 251) as i16 - 125)
                .collect()
        })
        .collect();
    let kernel = [[1, 0, -1], [2, 0, -2], [1, 0, -1]]; // Sobel-x
    let signal: Vec<i16> = (0..256).map(|i| ((i * 29) % 173) as i16 - 86).collect();
    let conv = kernels::conv2d_3x3(pe, &image, &kernel, 3).expect("conv runs");
    let fir = kernels::fir(pe, &signal, &[2, -3, 1], 1).expect("fir runs");
    (conv, fir)
}

fn golden_pipeline() -> (Vec<Vec<i16>>, Vec<i16>) {
    let image: Vec<Vec<i16>> = (0..5)
        .map(|r| {
            (0..128)
                .map(|c| ((r * 101 + c * 13) % 251) as i16 - 125)
                .collect()
        })
        .collect();
    let kernel = [[1, 0, -1], [2, 0, -2], [1, 0, -1]];
    let signal: Vec<i16> = (0..256).map(|i| ((i * 29) % 173) as i16 - 86).collect();
    (
        golden::conv2d_3x3(&image, &kernel, 3),
        golden::fir(&signal, &[2, -3, 1], 1),
    )
}

#[test]
fn corrupt_policy_produces_wrong_data_on_a_faulty_chip() {
    let fault = faulty_chip(8);
    let mut pe = ProcessingElement::new();
    pe.set_error_policy(ErrorPolicy::Corrupt);
    pe.set_fault_model(fault, StreamRng::from_seed(1));
    let (conv, _) = run_pipeline(&mut pe);
    let (golden_conv, _) = golden_pipeline();
    assert_ne!(conv, golden_conv, "hard lane faults must corrupt results");
    assert!(pe.stats().corrupted_lanes > 0);
    assert_eq!(pe.stats().replays, 0);
}

#[test]
fn stall_retry_is_correct_but_expensive() {
    let fault = faulty_chip(8);

    let mut clean = ProcessingElement::new();
    let _ = run_pipeline(&mut clean);
    let baseline_cycles = clean.stats().cycles;
    let baseline_energy = clean.stats().total_energy_pj();

    let mut pe = ProcessingElement::new();
    pe.set_error_policy(ErrorPolicy::StallRetry);
    pe.set_fault_model(fault, StreamRng::from_seed(2));
    let (conv, fir) = run_pipeline(&mut pe);
    let (golden_conv, golden_fir) = golden_pipeline();
    assert_eq!(conv, golden_conv, "retry recovers correctness");
    assert_eq!(fir[..], golden_fir[..fir.len()]);
    // A hard-faulty lane errors on *every* FU op: the whole-array replay
    // penalty the paper warns about.
    assert!(pe.stats().replays > 0);
    assert!(
        pe.stats().cycles > baseline_cycles * 3 / 2,
        "cycles {} vs clean {baseline_cycles}",
        pe.stats().cycles
    );
    assert!(pe.stats().total_energy_pj() > 1.2 * baseline_energy);
}

#[test]
fn spare_remap_is_correct_and_free_at_runtime() {
    let fault = faulty_chip(8);
    let mut clean = ProcessingElement::new();
    let _ = run_pipeline(&mut clean);
    let baseline_cycles = clean.stats().cycles;

    let mut pe = ProcessingElement::new();
    pe.set_error_policy(ErrorPolicy::SpareRemap);
    pe.set_fault_model(fault, StreamRng::from_seed(3));
    let spares_used = pe.repair(0.5).expect("enough spares");
    assert!(spares_used >= 1);
    let (conv, fir) = run_pipeline(&mut pe);
    let (golden_conv, golden_fir) = golden_pipeline();
    assert_eq!(conv, golden_conv);
    assert_eq!(fir[..], golden_fir[..fir.len()]);
    assert_eq!(pe.stats().cycles, baseline_cycles, "no runtime penalty");
    assert_eq!(pe.stats().replays, 0);
    assert_eq!(pe.stats().lane_errors, 0);
}

#[test]
fn fft_survives_spare_remap() {
    let fault = faulty_chip(8);
    let tone: Vec<i16> = (0..SIMD_WIDTH)
        .map(|i| (8000.0 * (2.0 * std::f64::consts::PI * 5.0 * i as f64 / 128.0).cos()) as i16)
        .collect();
    let zeros = vec![0i16; SIMD_WIDTH];

    let mut clean = ProcessingElement::new();
    let want = kernels::fft128(&mut clean, &tone, &zeros).expect("runs");

    let mut pe = ProcessingElement::new();
    pe.set_error_policy(ErrorPolicy::SpareRemap);
    pe.set_fault_model(fault, StreamRng::from_seed(4));
    pe.repair(0.5).expect("repairable");
    let got = kernels::fft128(&mut pe, &tone, &zeros).expect("runs");
    assert_eq!(got, want, "remapped FFT is bit-exact vs the fault-free run");
}

#[test]
fn energy_config_tracks_voltage() {
    let tech = TechModel::new(TechNode::Gp90);
    let a: Vec<i16> = (0..128).collect();
    let b: Vec<i16> = (0..128).rev().collect();

    let run_at = |vdd: f64| {
        let mut pe = ProcessingElement::new();
        pe.set_energy_config(EnergyConfig::for_tech(&tech, Volts(vdd)));
        let _ = kernels::vector_add(&mut pe, &a, &b).expect("runs");
        pe.stats().fu_energy_pj
    };
    let ntv = run_at(0.5);
    let nominal = run_at(1.0);
    assert!(
        (nominal / ntv - 4.0).abs() < 1e-9,
        "CV^2 scaling: {nominal} vs {ntv}"
    );
}

#[test]
fn intermittent_faults_trigger_occasional_replays() {
    // A guard-band lane errs probabilistically: stall-retry pays sometimes.
    let mut probs = vec![0.0; SIMD_WIDTH];
    probs[11] = 0.25;
    let mut pe = ProcessingElement::new();
    pe.set_error_policy(ErrorPolicy::StallRetry);
    pe.set_fault_model(
        FaultModel::from_probabilities(probs),
        StreamRng::from_seed(5),
    );
    let (conv, _) = run_pipeline(&mut pe);
    let (golden_conv, _) = golden_pipeline();
    assert_eq!(conv, golden_conv);
    let replays = pe.stats().replays;
    let fu_ops = pe.stats().fu_ops;
    assert!(replays > 0, "some ops should have replayed");
    assert!(replays < fu_ops / 2, "but not most: {replays}/{fu_ops}");
}
